package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Snapshot enforces checkpoint completeness: for every struct type with a
// Snapshot/Restore method pair (or a Marshal<X>/Unmarshal<X> pair — e.g.
// MarshalBinary/UnmarshalBinary), every mutable stored field of the
// receiver must be referenced in both directions. Adding a field to
// emu.State (or a checkpoint-store record) without round-tripping it then
// fails lint instead of silently corrupting checkpoints.
//
// "Referenced" is structural: a selector resolving to the field anywhere in
// the method body, or one call deep inside a same-package function or
// method invoked from it. Fields that are not state are skipped
// automatically: sync.Mutex/RWMutex/Once/WaitGroup, functions and channels.
// Deliberately unserialized fields (derived caches, identity pointers the
// caller re-supplies) are annotated on their declaration line with
// `//repro:allow snapshot <reason>`.
var Snapshot = &Analyzer{
	Name:    "snapshot",
	Version: 1,
	Doc:     "flags receiver fields missing from a Snapshot/Restore or Marshal/Unmarshal round-trip",
	Run:     runSnapshot,
}

// snapPair names the two directions of one serialization contract.
type snapPair struct{ save, load string }

func runSnapshot(p *Pass) {
	// Index this package's methods by (receiver named type, method name),
	// and functions by object for the one-call-deep expansion.
	type key struct {
		recv *types.Named
		name string
	}
	methods := map[key]*ast.FuncDecl{}
	byObj := map[types.Object]*ast.FuncDecl{}
	var recvNames []*types.Named
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := p.Pkg.Info.Defs[fd.Name]; obj != nil {
				byObj[obj] = fd
			}
			if named := recvNamed(p.Pkg.Info, fd); named != nil {
				k := key{named, fd.Name.Name}
				if _, seen := methods[k]; !seen {
					methods[k] = fd
				}
				recvNames = append(recvNames, named)
			}
		}
	}

	checked := map[*types.Named]bool{}
	for _, named := range recvNames {
		if checked[named] {
			continue
		}
		checked[named] = true
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for _, pair := range snapPairs(named, func(name string) bool {
			_, ok := methods[key{named, name}]
			return ok
		}) {
			save := methods[key{named, pair.save}]
			load := methods[key{named, pair.load}]
			saveRefs := fieldRefs(p.Pkg, save, byObj)
			loadRefs := fieldRefs(p.Pkg, load, byObj)
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !snapshotRelevant(f.Type()) {
					continue
				}
				inSave, inLoad := saveRefs[f], loadRefs[f]
				if inSave && inLoad {
					continue
				}
				var missing string
				switch {
				case !inSave && !inLoad:
					missing = pair.save + " or " + pair.load
				case !inSave:
					missing = pair.save
				default:
					missing = pair.load
				}
				p.Reportf(f.Pos(), "field %s.%s is not referenced by %s; the %s/%s round-trip would drop it (serialize it or annotate the field //repro:allow snapshot <reason>)",
					named.Obj().Name(), f.Name(), missing, pair.save, pair.load)
			}
		}
	}
}

// snapPairs returns the serialization pairs type named actually declares:
// Snapshot/Restore, plus every Marshal<X> with a matching Unmarshal<X>.
func snapPairs(named *types.Named, has func(string) bool) []snapPair {
	var pairs []snapPair
	if has("Snapshot") && has("Restore") {
		pairs = append(pairs, snapPair{"Snapshot", "Restore"})
	}
	for i := 0; i < named.NumMethods(); i++ {
		name := named.Method(i).Name()
		suffix, ok := strings.CutPrefix(name, "Marshal")
		if !ok {
			continue
		}
		if has("Unmarshal" + suffix) {
			pairs = append(pairs, snapPair{name, "Unmarshal" + suffix})
		}
	}
	return pairs
}

// recvNamed returns fd's receiver named type (through a pointer), or nil.
func recvNamed(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return nil
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// snapshotRelevant reports whether a field of type t is mutable stored
// state a snapshot must carry. Synchronization primitives, functions and
// channels are mechanisms, not state.
func snapshotRelevant(t types.Type) bool {
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			return false
		}
	}
	switch t.Underlying().(type) {
	case *types.Signature, *types.Chan:
		return false
	}
	return true
}

// fieldRefs collects every field of fd's receiver struct referenced in fd's
// body, expanding one call deep into same-package functions and methods.
func fieldRefs(pkg *Package, fd *ast.FuncDecl, byObj map[types.Object]*ast.FuncDecl) map[*types.Var]bool {
	refs := map[*types.Var]bool{}
	recv := recvNamed(pkg.Info, fd)
	if recv == nil {
		return refs
	}
	st, ok := recv.Underlying().(*types.Struct)
	if !ok {
		return refs
	}
	bodies := []*ast.BlockStmt{fd.Body}
	// One call deep: any same-package callee's body also counts.
	seen := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee types.Object
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			callee = pkg.Info.Uses[fun]
		case *ast.SelectorExpr:
			callee = pkg.Info.Uses[fun.Sel]
		}
		if callee == nil || seen[callee] {
			return true
		}
		seen[callee] = true
		if cfd := byObj[callee]; cfd != nil && cfd.Body != nil {
			bodies = append(bodies, cfd.Body)
		}
		return true
	})
	for _, body := range bodies {
		ast.Inspect(body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pkg.Info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			if v, ok := selection.Obj().(*types.Var); ok && fieldOfStruct(st, v) {
				refs[v] = true
			}
			return true
		})
	}
	return refs
}

// fieldOfStruct reports whether v is one of st's direct fields.
func fieldOfStruct(st *types.Struct, v *types.Var) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == v {
			return true
		}
	}
	return false
}
