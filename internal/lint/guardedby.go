package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedBy enforces mutex discipline on shared state. A struct field is
// "guarded" by a mutex field of the same struct when either
//
//   - the field's doc or line comment carries `//repro:guardedby <mutex>`
//     naming a sync.Mutex/sync.RWMutex field of the struct, or
//   - the struct owns a sync.Mutex/sync.RWMutex field and the field is
//     declared after it — the repository's (and Go's) standard "mu guards
//     the fields below" layout, inferred so existing structs are covered
//     without annotation. `//repro:guardedby none` opts a field out of the
//     inference (e.g. an atomic, or a field immutable after construction).
//
// Every read or write of a guarded field is then flagged unless the
// enclosing function provably holds the guard:
//
//   - the function body locks the same access path's mutex (c.mu.Lock() for
//     an access to c.field, s.m.mu.Lock() for s.m.field — paths are matched
//     textually on the resolved root object plus field names);
//   - the function is a method whose name ends in "Locked" — the
//     caller-holds-the-lock naming convention used across the repo;
//   - the access is through a variable created inside the function itself
//     (the constructor pattern: a value not yet shared needs no lock).
//
// For sync.RWMutex guards, reads accept RLock or Lock; writes require Lock.
// Intentional exceptions use `//repro:allow guardedby <reason>`.
var GuardedBy = &Analyzer{
	Name:    "guardedby",
	Version: 1,
	Doc:     "flags reads/writes of mutex-guarded struct fields from functions that do not hold the guard",
	Run:     runGuardedBy,
}

const dirGuardedBy = "//repro:guardedby"

// guardInfo describes one struct type's guarded fields.
type guardInfo struct {
	// guards maps a field object to the name of the mutex field guarding
	// it; rw records whether that mutex is a sync.RWMutex.
	guards map[*types.Var]string
	rw     map[string]bool
}

func runGuardedBy(p *Pass) {
	guarded := collectGuards(p)
	if len(guarded) == 0 {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedFunc(p, fd, guarded)
		}
	}
}

// mutexKind classifies t as a sync mutex: 0 = not a mutex, 1 = Mutex,
// 2 = RWMutex.
func mutexKind(t types.Type) int {
	n, ok := t.(*types.Named)
	if !ok {
		return 0
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return 0
	}
	switch obj.Name() {
	case "Mutex":
		return 1
	case "RWMutex":
		return 2
	}
	return 0
}

// collectGuards builds the guarded-field table for every struct type
// declared in the package, from explicit //repro:guardedby directives and
// from mutex-position inference.
func collectGuards(p *Pass) map[*types.Struct]*guardInfo {
	out := map[*types.Struct]*guardInfo{}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			stAST, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Defs[ts.Name]
			if obj == nil {
				return true
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			gi := buildGuardInfo(p, stAST, st)
			if gi != nil {
				out[st] = gi
			}
			return true
		})
	}
	return out
}

// buildGuardInfo resolves one struct's guards, or nil when it has none.
func buildGuardInfo(p *Pass, stAST *ast.StructType, st *types.Struct) *guardInfo {
	// Map AST fields to type-checker field objects, and find the mutexes.
	type fieldDecl struct {
		v     *types.Var
		field *ast.Field
	}
	var fields []fieldDecl
	mutexes := map[string]int{} // mutex field name -> kind
	i := 0
	for _, f := range stAST.Fields.List {
		n := len(f.Names)
		if n == 0 {
			n = 1 // embedded field occupies one slot
		}
		for j := 0; j < n; j++ {
			if i >= st.NumFields() {
				break
			}
			v := st.Field(i)
			fields = append(fields, fieldDecl{v: v, field: f})
			if k := mutexKind(v.Type()); k != 0 {
				mutexes[v.Name()] = k
			}
			i++
		}
	}
	gi := &guardInfo{guards: map[*types.Var]string{}, rw: map[string]bool{}}
	for name, kind := range mutexes {
		gi.rw[name] = kind == 2
	}
	// Inference: fields declared after the first mutex are guarded by it.
	inferredMu := ""
	for _, fd := range fields {
		if inferredMu == "" {
			if _, isMu := mutexes[fd.v.Name()]; isMu && mutexKind(fd.v.Type()) != 0 {
				inferredMu = fd.v.Name()
				continue
			}
		}
		dir, has := fieldGuardDirective(fd.field)
		switch {
		case has && dir == "none":
			// explicit opt-out
		case has:
			if _, ok := mutexes[dir]; ok {
				gi.guards[fd.v] = dir
			} else {
				p.Reportf(fd.field.Pos(), "//repro:guardedby names %q, which is not a sync.Mutex/RWMutex field of this struct", dir)
			}
		case inferredMu != "" && mutexKind(fd.v.Type()) == 0:
			gi.guards[fd.v] = inferredMu
		}
	}
	if len(gi.guards) == 0 {
		return nil
	}
	return gi
}

// fieldGuardDirective extracts `//repro:guardedby <arg>` from a field's doc
// or trailing line comment.
func fieldGuardDirective(f *ast.Field) (arg string, ok bool) {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, found := strings.CutPrefix(c.Text, dirGuardedBy)
			if !found {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				return fields[0], true
			}
		}
	}
	return "", false
}

// lockSet records, per textual access path ("c" or "c.met"), which mutex
// fields the function locks and how (write lock vs read lock).
type lockSet struct {
	write map[string]bool // "path.mu" locked via Lock
	read  map[string]bool // "path.mu" locked via RLock (or Lock)
}

func checkGuardedFunc(p *Pass, fd *ast.FuncDecl, guarded map[*types.Struct]*guardInfo) {
	info := p.Pkg.Info
	// Methods named *Locked document that the caller holds the lock.
	if fd.Recv != nil && strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	locks := collectLocks(info, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		fieldObj, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		owner := ownerStruct(selection)
		gi := guarded[owner]
		if gi == nil {
			return true
		}
		mu, isGuarded := gi.guards[fieldObj]
		if !isGuarded {
			return true
		}
		base, root := accessPath(info, sel.X)
		if root == nil {
			return true
		}
		// Constructor pattern: a value created inside this function is not
		// yet shared, so its fields need no lock.
		if v, ok := root.(*types.Var); ok && fd.Body.Pos() <= v.Pos() && v.Pos() <= fd.Body.End() {
			return true
		}
		key := base + "." + mu
		write := isWriteContext(p.Pkg, sel)
		if write {
			if !locks.write[key] {
				p.Reportf(sel.Sel.Pos(), "write to %s.%s guarded by %s without holding %s.Lock (hold the lock, rename the %s *Locked, or //repro:allow guardedby)", base, fieldObj.Name(), mu, key, funcKind(fd))
			}
		} else if !locks.write[key] && !locks.read[key] {
			p.Reportf(sel.Sel.Pos(), "read of %s.%s guarded by %s without holding %s (hold the lock, rename the %s *Locked, or //repro:allow guardedby)", base, fieldObj.Name(), mu, key, funcKind(fd))
		}
		return true
	})
}

func funcKind(fd *ast.FuncDecl) string {
	if fd.Recv != nil {
		return "method"
	}
	return "function"
}

// ownerStruct returns the struct type the selected field belongs to.
func ownerStruct(selection *types.Selection) *types.Struct {
	t := selection.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	// Walk the embedding chain: the index path's last hop names the field,
	// earlier hops name embedded structs.
	for _, idx := range selection.Index()[:len(selection.Index())-1] {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return nil
		}
		t = st.Field(idx).Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// accessPath renders expr as a stable "root.f1.f2" path plus the resolved
// root object, or ("", nil) when the base is not a plain selector chain.
func accessPath(info *types.Info, expr ast.Expr) (string, types.Object) {
	var parts []string
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			obj := info.ObjectOf(e)
			if obj == nil {
				return "", nil
			}
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			if len(parts) == 0 {
				return e.Name, obj
			}
			return e.Name + "." + strings.Join(parts, "."), obj
		case *ast.SelectorExpr:
			parts = append(parts, e.Sel.Name)
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return "", nil
		}
	}
}

// collectLocks scans body for <path>.<mu>.Lock() / RLock() calls on sync
// mutexes and records them by textual path.
func collectLocks(info *types.Info, body *ast.BlockStmt) lockSet {
	ls := lockSet{write: map[string]bool{}, read: map[string]bool{}}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Lock" && name != "RLock" {
			return true
		}
		if mutexKind(deref(info.TypeOf(sel.X))) == 0 {
			return true
		}
		path, root := accessPath(info, sel.X)
		if root == nil {
			return true
		}
		if name == "Lock" {
			ls.write[path] = true
		}
		ls.read[path] = true
		return true
	})
	return ls
}

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isWriteContext reports whether sel is written: assignment LHS (including
// op-assigns), ++/--, or has its address taken (conservatively a write).
func isWriteContext(pkg *Package, sel *ast.SelectorExpr) bool {
	fd := pkg.enclosingFunc(sel.Pos())
	if fd == nil || fd.Body == nil {
		return false
	}
	write := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if containsNode(lhs, sel) {
					write = true
				}
			}
		case *ast.IncDecStmt:
			if containsNode(n.X, sel) {
				write = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && containsNode(n.X, sel) {
				write = true
			}
		}
		return !write
	})
	return write
}

// containsNode reports whether target appears within root (identity, not
// structural, comparison).
func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
