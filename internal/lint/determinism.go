package lint

import (
	"go/ast"
	"go/types"
)

// Determinism flags sources of run-to-run nondeterminism inside
// //repro:deterministic scopes: wall-clock reads, the global math/rand
// generator, and iteration over maps whose visit order can leak into output
// or simulator state.
//
// Map ranges are not banned outright — three idioms are provably
// order-insensitive and stay allowed:
//
//   - collect-then-sort: the body only appends keys/values to a slice that a
//     later statement in the same function sorts;
//   - keyed writes: every statement stores into a map/slice indexed by the
//     loop variables (the final contents are order-independent);
//   - commutative accumulation: only +=, *=, |=, &=, ^= or ++/-- updates.
//
// Anything else — early returns, callbacks, channel sends, appends that are
// never sorted — is flagged.
var Determinism = &Analyzer{
	Name:    "determinism",
	Version: 1,
	Doc:     "flags wall-clock, global math/rand, and order-dependent map iteration in //repro:deterministic scopes",
	Run:     runDeterminism,
}

func runDeterminism(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !p.Pkg.Directives.Deterministic(fd) {
				continue
			}
			checkDeterministicFunc(p, fd)
		}
	}
}

func checkDeterministicFunc(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, pkg := calleePkgFunc(p.Pkg.Info, n); pkg != "" {
				switch {
				case pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
					p.Reportf(n.Pos(), "call to time.%s in deterministic scope", name)
				case (pkg == "math/rand" || pkg == "math/rand/v2") && name != "New" && name != "NewSource":
					// New/NewSource are pure constructors; everything else
					// reads or mutates the shared global generator.
					p.Reportf(n.Pos(), "global math/rand call rand.%s in deterministic scope (use a seeded *rand.Rand)", name)
				}
			}
		case *ast.RangeStmt:
			if t := p.Pkg.Info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap && !orderInsensitiveRange(p.Pkg, fd, n) {
					p.Reportf(n.Pos(), "map iteration order may leak into output/state; sort the keys or restrict the body to order-insensitive writes")
				}
			}
		}
		return true
	})
}

// calleePkgFunc resolves a call to a package-level function, returning the
// function name and its package path ("" when the callee is anything else:
// a method, builtin, conversion or local function value).
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (name, pkgPath string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "", "" // method call, e.g. (*rand.Rand).Intn — deterministic if seeded
	}
	return fn.Name(), fn.Pkg().Path()
}

// orderInsensitiveRange reports whether a map-range body cannot observe
// iteration order, per the idioms documented on Determinism.
func orderInsensitiveRange(pkg *Package, fd *ast.FuncDecl, r *ast.RangeStmt) bool {
	cl := &rangeClassifier{pkg: pkg, locals: map[types.Object]bool{}}
	if !cl.stmts(r.Body.List) {
		return false
	}
	for _, obj := range cl.appended {
		if !sortedAfter(pkg, fd, r, obj) {
			return false
		}
	}
	return true
}

type rangeClassifier struct {
	pkg      *Package
	appended []types.Object        // slices accumulated in the body; must be sorted later
	locals   map[types.Object]bool // variables defined inside the body (per-iteration state)
}

func (cl *rangeClassifier) stmts(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if !cl.assign(s) {
				return false
			}
		case *ast.IncDecStmt:
			// x++ / x-- accumulation commutes.
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isBuiltin(cl.pkg.Info, call, "delete") {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (cl *rangeClassifier) assign(s *ast.AssignStmt) bool {
	switch s.Tok.String() {
	case "+=", "*=", "|=", "&=", "^=":
		return true // commutative accumulation
	case ":=":
		// Defining per-iteration locals is harmless as long as the
		// initializer has no side effects (only allocation-like builtins).
		for _, rhs := range s.Rhs {
			if !sideEffectFree(cl.pkg.Info, rhs) {
				return false
			}
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := cl.pkg.Info.ObjectOf(id); obj != nil {
					cl.locals[obj] = true
				}
			}
		}
		return true
	case "=":
	default:
		return false
	}
	// s = append(s, ...) accumulation: allowed if the slice is sorted later
	// (checked by the caller).
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltin(cl.pkg.Info, call, "append") {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				if obj := cl.pkg.Info.ObjectOf(id); obj != nil {
					cl.appended = append(cl.appended, obj)
					return true
				}
			}
			return false
		}
	}
	// Keyed writes m[k] = v are order-independent (each key is written at
	// most once per iteration); so are stores through per-iteration locals.
	for i, lhs := range s.Lhs {
		if !sideEffectFree(cl.pkg.Info, s.Rhs[min(i, len(s.Rhs)-1)]) {
			return false
		}
		if _, ok := lhs.(*ast.IndexExpr); ok {
			continue
		}
		if root := rootIdent(lhs); root != nil {
			if obj := cl.pkg.Info.ObjectOf(root); obj != nil && cl.locals[obj] {
				continue
			}
		}
		return false
	}
	return true
}

// sideEffectFree reports whether expr contains no calls other than
// allocation-like builtins (new, make, len, cap).
func sideEffectFree(info *types.Info, expr ast.Expr) bool {
	ok := true
	ast.Inspect(expr, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return ok
		}
		switch {
		case isBuiltin(info, call, "new"), isBuiltin(info, call, "make"),
			isBuiltin(info, call, "len"), isBuiltin(info, call, "cap"):
		default:
			ok = false
		}
		return ok
	})
	return ok
}

// sortedAfter reports whether some statement after the range loop (in the
// same function) passes obj to a sort.* or slices.Sort* call.
func sortedAfter(pkg *Package, fd *ast.FuncDecl, r *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < r.End() || found {
			return true
		}
		if _, pkgPath := calleePkgFunc(pkg.Info, call); pkgPath != "sort" && pkgPath != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pkg.Info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
