package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive comment prefixes. They use the //repro: namespace so gofmt leaves
// them pinned to their declarations (like //go: directives).
const (
	dirDeterministic = "//repro:deterministic"
	dirHotpath       = "//repro:hotpath"
	dirObsEmit       = "//repro:obsemit"
	dirAllow         = "//repro:allow"
)

// funcMarks are the per-function directive flags.
type funcMarks struct {
	deterministic bool
	hotpath       bool
	obsemit       bool
}

// Directives indexes every //repro: comment in a package.
type Directives struct {
	// PkgDeterministic is set by //repro:deterministic in any file's
	// package doc comment: the determinism analyzer then covers every
	// function in the package.
	PkgDeterministic bool

	funcs map[*ast.FuncDecl]funcMarks
	// allows maps "file:line" to the analyzers suppressed on that line.
	allows map[string]map[string]bool
}

func parseDirectives(p *Package) *Directives {
	d := &Directives{
		funcs:  map[*ast.FuncDecl]funcMarks{},
		allows: map[string]map[string]bool{},
	}
	for _, f := range p.Files {
		if f.Doc != nil && docHas(f.Doc, dirDeterministic) {
			d.PkgDeterministic = true
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			d.funcs[fd] = funcMarks{
				deterministic: docHas(fd.Doc, dirDeterministic),
				hotpath:       docHas(fd.Doc, dirHotpath),
				obsemit:       docHas(fd.Doc, dirObsEmit),
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, dirAllow)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := posKey(pos.Filename, pos.Line)
				if d.allows[key] == nil {
					d.allows[key] = map[string]bool{}
				}
				d.allows[key][fields[0]] = true
			}
		}
	}
	return d
}

func docHas(doc *ast.CommentGroup, directive string) bool {
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

func posKey(file string, line int) string {
	var b strings.Builder
	b.WriteString(file)
	b.WriteByte(':')
	// Small manual itoa keeps this allocation-light for large runs.
	b.WriteString(itoa(line))
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// allowed reports whether an //repro:allow for analyzer sits on the finding's
// line or the line directly above it.
func (d *Directives) allowed(analyzer string, pos token.Position) bool {
	if d.allows[posKey(pos.Filename, pos.Line)][analyzer] {
		return true
	}
	return d.allows[posKey(pos.Filename, pos.Line-1)][analyzer]
}

// funcAllowed reports whether the function's doc comment carries an
// //repro:allow for analyzer (suppressing the whole function body).
func (d *Directives) funcAllowed(analyzer string, fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, dirAllow)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) > 0 && fields[0] == analyzer {
			return true
		}
	}
	return false
}

// Deterministic reports whether fd is in the determinism analyzer's scope.
func (d *Directives) Deterministic(fd *ast.FuncDecl) bool {
	return d.PkgDeterministic || d.funcs[fd].deterministic
}

// Hotpath reports whether fd is marked //repro:hotpath.
func (d *Directives) Hotpath(fd *ast.FuncDecl) bool { return d.funcs[fd].hotpath }

// ObsEmit reports whether fd is marked //repro:obsemit.
func (d *Directives) ObsEmit(fd *ast.FuncDecl) bool { return d.funcs[fd].obsemit }
