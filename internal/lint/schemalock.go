package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// SchemaLock pins the shape of serialized structs. A struct annotated
//
//	//repro:schema <name> v<N>
//
// in its type doc comment gets a canonical fingerprint — struct name,
// declared version, and every field's Go name, JSON tag and type, in
// declaration order — checked against a committed golden under schemas/.
// Any shape change without bumping the version AND regenerating the golden
// via `renamelint -update-schemas` is an error, so wire formats (sweep
// specs, bench artifacts, drift reports, fabric protocol messages) cannot
// drift silently under consumers that parse them.
//
// The golden directory is the nearest `schemas` directory at or above the
// package, not crossing the module root (whose `schemas/` is the default);
// SchemaDir overrides the resolution (the -schema-dir flag, used by the CI
// no-drift gate to regenerate into a scratch copy).
var SchemaLock = &Analyzer{
	Name:    "schemalock",
	Version: 1,
	Doc:     "checks //repro:schema struct fingerprints against committed schemas/ goldens",
	Run:     runSchemaLock,
}

// SchemaDir, when non-empty, overrides golden-directory resolution for both
// checking and updating.
var SchemaDir string

const dirSchema = "//repro:schema"

// schemaGolden is the committed golden document for one schema.
type schemaGolden struct {
	Schema      string        `json:"schema"`
	Version     int           `json:"version"`
	Struct      string        `json:"struct"`
	Package     string        `json:"package"`
	Fingerprint string        `json:"fingerprint"`
	Fields      []schemaField `json:"fields"`
}

// schemaField is one struct field in canonical form.
type schemaField struct {
	Name string `json:"name"`
	JSON string `json:"json,omitempty"`
	Type string `json:"type"`
}

// schemaDecl is one annotated struct found in source.
type schemaDecl struct {
	name    string
	version int
	ts      *ast.TypeSpec
	st      *types.Struct
}

func runSchemaLock(p *Pass) {
	decls := findSchemaDecls(p, true)
	if len(decls) == 0 {
		return
	}
	dir := resolveSchemaDir(p.Pkg.Dir)
	for _, d := range decls {
		golden, err := readGolden(dir, d.name)
		cur := fingerprint(p.Pkg, d)
		switch {
		case err != nil:
			p.Reportf(d.ts.Name.Pos(), "schema %q v%d has no committed golden in %s; run `renamelint -update-schemas` to create it", d.name, d.version, dir)
		case golden.Version == d.version && golden.Fingerprint != cur.Fingerprint:
			p.Reportf(d.ts.Name.Pos(), "schema %q shape changed without a version bump (golden and source both say v%d but fingerprints differ: %s); bump the //repro:schema version and run `renamelint -update-schemas`",
				d.name, d.version, diffFields(golden, cur))
		case golden.Version != d.version && golden.Fingerprint != cur.Fingerprint:
			p.Reportf(d.ts.Name.Pos(), "schema %q golden is stale (golden v%d, source v%d); run `renamelint -update-schemas` to regenerate it", d.name, golden.Version, d.version)
		case golden.Version != d.version:
			p.Reportf(d.ts.Name.Pos(), "schema %q version mismatch (golden v%d, source v%d) with an identical shape; run `renamelint -update-schemas`", d.name, golden.Version, d.version)
		}
	}
}

// UpdateSchemas loads the packages named by patterns and (re)writes the
// golden for every //repro:schema struct. It refuses to overwrite a golden
// whose shape changed but whose version did not — the whole point of the
// lock — and returns the paths it wrote.
func UpdateSchemas(patterns []string) ([]string, error) {
	pkgs, err := Load(patterns)
	if err != nil {
		return nil, err
	}
	var written []string
	for _, pkg := range pkgs {
		pass := &Pass{Analyzer: SchemaLock, Pkg: pkg, findings: &[]Finding{}}
		decls := findSchemaDecls(pass, false)
		if len(decls) == 0 {
			continue
		}
		dir := resolveSchemaDir(pkg.Dir)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return written, err
		}
		for _, d := range decls {
			cur := fingerprint(pkg, d)
			old, err := readGolden(dir, d.name)
			if err == nil {
				if old.Fingerprint == cur.Fingerprint && old.Version == cur.Version {
					continue // up to date
				}
				if old.Version == d.version && old.Fingerprint != cur.Fingerprint {
					return written, fmt.Errorf("schema %q: shape changed but version is still v%d; bump the //repro:schema version before regenerating (%s)",
						d.name, d.version, diffFields(old, cur))
				}
			}
			path := filepath.Join(dir, d.name+".json")
			data, err := json.MarshalIndent(cur, "", "\t")
			if err != nil {
				return written, err
			}
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				return written, err
			}
			written = append(written, path)
		}
	}
	sort.Strings(written)
	return written, nil
}

// findSchemaDecls scans the package for //repro:schema annotations. Malformed
// directives are reported when report is set (the check pass) and skipped
// during updates.
func findSchemaDecls(p *Pass, report bool) []schemaDecl {
	var out []schemaDecl
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				name, version, found, perr := schemaDirective(doc)
				if !found {
					continue
				}
				if perr != "" {
					if report {
						p.Reportf(ts.Name.Pos(), "bad //repro:schema directive: %s (want `//repro:schema <name> v<N>`)", perr)
					}
					continue
				}
				obj := p.Pkg.Info.Defs[ts.Name]
				if obj == nil {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					if report {
						p.Reportf(ts.Name.Pos(), "//repro:schema on non-struct type %s", ts.Name.Name)
					}
					continue
				}
				out = append(out, schemaDecl{name: name, version: version, ts: ts, st: st})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// schemaDirective parses `//repro:schema <name> v<N>` from a doc comment.
func schemaDirective(doc *ast.CommentGroup) (name string, version int, found bool, parseErr string) {
	if doc == nil {
		return "", 0, false, ""
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, dirSchema)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", 0, true, fmt.Sprintf("got %d arguments, want 2", len(fields))
		}
		vs, ok := strings.CutPrefix(fields[1], "v")
		if !ok {
			return "", 0, true, fmt.Sprintf("version %q does not start with 'v'", fields[1])
		}
		v, err := strconv.Atoi(vs)
		if err != nil || v < 1 {
			return "", 0, true, fmt.Sprintf("bad version %q", fields[1])
		}
		if !ValidSchemaName(fields[0]) {
			return "", 0, true, fmt.Sprintf("bad schema name %q", fields[0])
		}
		return fields[0], v, true, ""
	}
	return "", 0, false, ""
}

// ValidSchemaName reports whether name is a safe golden file stem:
// lowercase letters, digits, '-', '_' and '.'; no path separators.
func ValidSchemaName(name string) bool {
	if name == "" || len(name) > 100 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return !strings.HasPrefix(name, ".")
}

// fingerprint renders d into its golden document. The canonical text hashed
// into Fingerprint covers the schema name, struct name, and every field's
// (name, json tag, type) in declaration order; types are printed
// package-name-qualified so the text is stable across checkouts. The version
// is deliberately NOT hashed: fingerprints answer "did the shape change",
// the version field answers "was the change declared" — keeping them
// independent is what lets the checker distinguish an undeclared shape
// change from a declared one with a stale golden.
func fingerprint(pkg *Package, d schemaDecl) schemaGolden {
	qual := func(p *types.Package) string { return p.Name() }
	g := schemaGolden{
		Schema:  d.name,
		Version: d.version,
		Struct:  d.ts.Name.Name,
		Package: pkg.Types.Name(),
	}
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s struct %s\n", d.name, d.ts.Name.Name)
	for i := 0; i < d.st.NumFields(); i++ {
		f := d.st.Field(i)
		tag := jsonTagName(d.st.Tag(i))
		sf := schemaField{
			Name: f.Name(),
			JSON: tag,
			Type: types.TypeString(f.Type(), qual),
		}
		g.Fields = append(g.Fields, sf)
		fmt.Fprintf(&b, "field %s json=%s type=%s\n", sf.Name, orDash(sf.JSON), sf.Type)
	}
	sum := sha256.Sum256([]byte(b.String()))
	g.Fingerprint = "sha256:" + hex.EncodeToString(sum[:])
	return g
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// jsonTagName extracts the json key (with options like ",omitempty" kept —
// they are part of the wire shape).
func jsonTagName(tag string) string {
	return reflectStructTagGet(tag, "json")
}

// reflectStructTagGet is reflect.StructTag.Get without importing reflect's
// value machinery into the analyzer (same quoting rules).
func reflectStructTagGet(tag, key string) string {
	for tag != "" {
		i := 0
		for i < len(tag) && tag[i] == ' ' {
			i++
		}
		tag = tag[i:]
		if tag == "" {
			break
		}
		i = 0
		for i < len(tag) && tag[i] > ' ' && tag[i] != ':' && tag[i] != '"' {
			i++
		}
		if i == 0 || i+1 >= len(tag) || tag[i] != ':' || tag[i+1] != '"' {
			break
		}
		name := tag[:i]
		tag = tag[i+1:]
		qv, err := strconv.QuotedPrefix(tag)
		if err != nil {
			break
		}
		tag = tag[len(qv):]
		if name == key {
			v, _ := strconv.Unquote(qv)
			return v
		}
	}
	return ""
}

// diffFields summarizes what moved between two golden shapes, for the
// finding message.
func diffFields(old, cur schemaGolden) string {
	oldSet := map[string]schemaField{}
	for _, f := range old.Fields {
		oldSet[f.Name] = f
	}
	curSet := map[string]schemaField{}
	for _, f := range cur.Fields {
		curSet[f.Name] = f
	}
	var parts []string
	for _, f := range cur.Fields {
		o, ok := oldSet[f.Name]
		switch {
		case !ok:
			parts = append(parts, "+"+f.Name)
		case o != f:
			parts = append(parts, "~"+f.Name)
		}
	}
	for _, f := range old.Fields {
		if _, ok := curSet[f.Name]; !ok {
			parts = append(parts, "-"+f.Name)
		}
	}
	if len(parts) == 0 {
		return "field order changed"
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// readGolden loads one committed golden.
func readGolden(dir, name string) (schemaGolden, error) {
	var g schemaGolden
	data, err := os.ReadFile(filepath.Join(dir, name+".json"))
	if err != nil {
		return g, err
	}
	if err := json.Unmarshal(data, &g); err != nil {
		return g, fmt.Errorf("schemas/%s.json: %w", name, err)
	}
	return g, nil
}

// resolveSchemaDir finds the golden directory for a package rooted at
// pkgDir: SchemaDir if set, else the nearest existing `schemas` directory
// walking up from pkgDir, stopping at (and defaulting to) the module root.
func resolveSchemaDir(pkgDir string) string {
	if SchemaDir != "" {
		return SchemaDir
	}
	dir := pkgDir
	for {
		cand := filepath.Join(dir, "schemas")
		if fi, err := os.Stat(cand); err == nil && fi.IsDir() {
			return cand
		}
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, "schemas")
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return filepath.Join(pkgDir, "schemas")
		}
		dir = parent
	}
}
