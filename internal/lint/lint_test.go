package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts expected-diagnostic annotations: // want `regex`
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// checkGolden loads one testdata package, runs the given analyzers, and
// verifies the findings exactly match the package's // want comments.
func checkGolden(t *testing.T, dir string, analyzers []*Analyzer) {
	t.Helper()
	findings, err := Run([]string{"./testdata/src/" + dir}, analyzers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Expected diagnostics, keyed by file:line.
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{}
	glob, err := filepath.Glob(filepath.Join("testdata", "src", dir, "*.go"))
	if err != nil || len(glob) == 0 {
		t.Fatalf("no testdata sources for %s (err=%v)", dir, err)
	}
	for _, path := range glob {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", abs, i+1)
				wants[key] = append(wants[key], &want{re: regexp.MustCompile(m[1])})
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.File, f.Line)
		consumed := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				consumed = true
				break
			}
		}
		if !consumed {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q not reported", key, w.re)
			}
		}
	}
}

func TestDeterminismGolden(t *testing.T) {
	checkGolden(t, "det_bad", []*Analyzer{Determinism})
}

func TestHotpathGolden(t *testing.T) {
	checkGolden(t, "hotpath_bad", []*Analyzer{Hotpath})
}

func TestTagPairGolden(t *testing.T) {
	checkGolden(t, "tagpair_bad", []*Analyzer{TagPair})
}

func TestObsGuardGolden(t *testing.T) {
	checkGolden(t, "obsguard_bad", []*Analyzer{ObsGuard})
}

func TestGuardedByGolden(t *testing.T) {
	checkGolden(t, "guardedby_bad", []*Analyzer{GuardedBy})
}

func TestGuardedByClean(t *testing.T) {
	checkGolden(t, "guardedby_clean", []*Analyzer{GuardedBy})
}

func TestSnapshotGolden(t *testing.T) {
	checkGolden(t, "snapshot_bad", []*Analyzer{Snapshot})
}

func TestSnapshotClean(t *testing.T) {
	checkGolden(t, "snapshot_clean", []*Analyzer{Snapshot})
}

func TestSchemaLockGolden(t *testing.T) {
	checkGolden(t, "schemalock_bad", []*Analyzer{SchemaLock})
}

func TestSchemaLockClean(t *testing.T) {
	checkGolden(t, "schemalock_clean", []*Analyzer{SchemaLock})
}

func TestDetflowGolden(t *testing.T) {
	checkGolden(t, "detflow_bad", []*Analyzer{Detflow})
}

func TestDetflowClean(t *testing.T) {
	checkGolden(t, "detflow_clean", []*Analyzer{Detflow})
}

// TestGenericsLoad pins the loader on type-parameterized and build-tagged
// sources: the package must typecheck (generic decls, instantiations,
// constraint interfaces) and come out clean under the full suite.
func TestGenericsLoad(t *testing.T) {
	checkGolden(t, "generics_ok", All())
}

// TestCleanPackage runs the full suite over a package built from every
// allowed idiom (collect-then-sort, keyed writes, commutative accumulation,
// receiver-owned appends, guarded emissions, paired tags, //repro:allow) and
// asserts zero findings.
func TestCleanPackage(t *testing.T) {
	checkGolden(t, "clean", All())
}

// TestRepoClean pins the tentpole acceptance criterion: the repository's own
// packages — internal/... AND cmd/..., everything under the repro module —
// carry zero findings from the full eight-analyzer suite. Wildcard patterns
// skip testdata directories, so the seeded-violation packages above do not
// trip it.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping whole-repo lint")
	}
	findings, err := Run([]string{"repro/..."}, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("finding: %s", f)
	}
}
