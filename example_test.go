package regreuse_test

import (
	"fmt"

	regreuse "repro"
	"repro/internal/asm"
	"repro/internal/regfile"
)

// ExampleRunWorkload simulates one workload under the paper's reuse scheme
// and reports whether the run was architecturally correct.
func ExampleRunWorkload() {
	res, err := regreuse.RunWorkload("dgemm", 1, regreuse.Config{
		Scheme:      regreuse.Reuse,
		CheckOracle: true,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("halted:", res.Halted)
	fmt.Println("checksum ok:", res.ChecksumOK)
	fmt.Println("register sharing happened:", res.Reuses > 0)
	// Output:
	// halted: true
	// checksum ok: true
	// register sharing happened: true
}

// ExampleRunProgram assembles a tiny program and runs it on the simulated
// core: the chain a = (a+b)*a keeps reusing one physical register.
func ExampleRunProgram() {
	p, err := asm.Assemble(`
		movi x1, #3
		movi x2, #4
		add  x1, x1, x2      ; 7   (reuses x1's register, version 1)
		mul  x1, x1, x1      ; 49  (version 2)
		mov  x10, x1
		halt
	`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := regreuse.RunProgram(p, regreuse.Config{Scheme: regreuse.Reuse, CheckOracle: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("x10 =", res.Checksum)
	// Output:
	// x10 = 49
}

// ExampleConfig shows the design-space knobs: a custom hybrid register file
// and a capped reuse-chain depth.
func ExampleConfig() {
	res, err := regreuse.RunWorkload("poly_horner", 1, regreuse.Config{
		Scheme:     regreuse.Reuse,
		FPRegs:     regfile.BankSizes{31, 11, 7, 4}, // 0/1/2/3 shadow cells
		ReuseDepth: 2,                               // 1-bit counter ablation
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("chains deeper than 2 reuses:", res.ReusesByVer[3])
	// Output:
	// chains deeper than 2 reuses: 0
}
