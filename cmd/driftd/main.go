// Command driftd is the regression-intelligence service over the repo's
// per-commit artifacts (BENCH_core.json, testdata/golden_stats.json,
// results/*.csv): it ingests them into a content-addressed append-only
// history store, detects drift against the trajectory and the paper's
// reported bands, names the first bad commit via cached bisect, and serves
// the whole thing sweepd-style over HTTP.
//
//	driftd ingest -dir drift                    # record HEAD's artifacts
//	driftd report -dir drift -format text       # drift verdict + evidence
//	driftd bisect -dir drift -metric <m>        # first bad commit, cached
//	driftd serve  -dir drift -addr :8081        # POST /ingest, GET /report
//
// `ingest` stamps the current git commit and its changed-file list
// automatically when run inside a repository; `report` exits nonzero on a
// fail verdict (the `make driftsmoke` CI gate). `bisect -run CMD` falls
// back to executing CMD (e.g. `make bench`) in a scratch git worktree for
// commits whose artifacts were never ingested; its output is ingested, so
// every probe is cached for the next bisect.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/regress"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "bisect":
		err = cmdBisect(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "driftd: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "driftd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: driftd <command> [flags]

commands:
  ingest   record a commit's artifacts into the history store
  report   run the drift detector over the trajectory
  bisect   name the first bad commit for a drifted metric
  serve    serve the store over HTTP (POST /ingest, GET /report|/history|/metrics)

run "driftd <command> -h" for the command's flags.`)
}

// git runs a git command and returns its trimmed stdout.
func git(args ...string) (string, error) {
	out, err := exec.Command("git", args...).Output()
	if err != nil {
		return "", fmt.Errorf("git %s: %w", strings.Join(args, " "), err)
	}
	return strings.TrimSpace(string(out)), nil
}

func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("driftd ingest", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "drift", "history store directory")
		commit  = fs.String("commit", "", "commit the artifacts belong to (default: git rev-parse HEAD)")
		changed = fs.String("changed", "", "comma-separated changed-file list for the commit (default: git diff-tree)")
		bench   = fs.String("bench", "BENCH_core.json", "bench artifact path (\"\" to skip)")
		golden  = fs.String("golden", "testdata/golden_stats.json", "golden-stats artifact path (\"\" to skip)")
		figures = fs.String("figures", "results", "figure CSV directory (\"\" to skip)")
	)
	fs.Parse(args)

	if *commit == "" {
		head, err := git("rev-parse", "HEAD")
		if err != nil {
			return fmt.Errorf("no -commit given and %v", err)
		}
		*commit = head
	}
	var changedFiles []string
	if *changed != "" {
		changedFiles = strings.Split(*changed, ",")
	} else if out, err := git("diff-tree", "--no-commit-id", "--name-only", "-r", "--root", *commit); err == nil && out != "" {
		changedFiles = strings.Split(out, "\n")
	}

	var arts []regress.Artifact
	addFile := func(kind, name, path string) error {
		data, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "driftd: skipping %s (%s): not found\n", kind, path)
			return nil
		}
		if err != nil {
			return err
		}
		arts = append(arts, regress.Artifact{Kind: kind, Name: name, Data: data})
		return nil
	}
	if *bench != "" {
		if err := addFile(regress.KindBench, filepath.Base(*bench), *bench); err != nil {
			return err
		}
	}
	if *golden != "" {
		if err := addFile(regress.KindGolden, filepath.Base(*golden), *golden); err != nil {
			return err
		}
	}
	if *figures != "" {
		csvs, err := filepath.Glob(filepath.Join(*figures, "*.csv"))
		if err != nil {
			return err
		}
		sort.Strings(csvs)
		for _, path := range csvs {
			name := strings.TrimSuffix(filepath.Base(path), ".csv")
			if err := addFile(regress.KindFigure, name, path); err != nil {
				return err
			}
		}
	}

	store, err := regress.Open(*dir)
	if err != nil {
		return err
	}
	defer store.Close()
	res, err := store.Ingest(*commit, changedFiles, arts)
	if err != nil {
		return err
	}
	fmt.Printf("ingested %d artifact(s) at commit %s (%d new record(s))\n", len(arts), res.Commit, res.Ingested)
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("driftd report", flag.ExitOnError)
	var (
		dir    = fs.String("dir", "drift", "history store directory")
		format = fs.String("format", "json", "output format: json | text")
		out    = fs.String("o", "", "write the report here instead of stdout")
		failOn = fs.String("fail-on", "fail", "exit nonzero at this verdict or worse: fail | warn | never")
	)
	fs.Parse(args)

	store, err := regress.Open(*dir)
	if err != nil {
		return err
	}
	defer store.Close()
	rep, err := regress.Detect(store, store.History(), regress.Config{})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "text":
		if err := rep.Text(w); err != nil {
			return err
		}
	case "json":
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -format %q", *format)
	}
	gate := rep.Verdict == regress.VerdictFail
	if *failOn == "warn" {
		gate = gate || rep.Verdict == regress.VerdictWarn
	} else if *failOn == "never" {
		gate = false
	}
	if gate {
		return fmt.Errorf("drift verdict %s", rep.Verdict)
	}
	return nil
}

func cmdBisect(args []string) error {
	fs := flag.NewFlagSet("driftd bisect", flag.ExitOnError)
	var (
		dir       = fs.String("dir", "drift", "history store directory")
		metric    = fs.String("metric", "", "drifted metric to bisect (e.g. bench/BenchmarkSimulatorThroughput/reuse/Minst/s)")
		good      = fs.String("good", "", "known-good commit (default: first in trajectory)")
		bad       = fs.String("bad", "", "known-bad commit (default: head of trajectory)")
		threshold = fs.Float64("threshold", 0.10, "relative regression threshold vs the good commit")
		format    = fs.String("format", "text", "output format: json | text")
		runCmd    = fs.String("run", "", "command regenerating BENCH_core.json for uncached probe commits (runs in a scratch git worktree)")
	)
	fs.Parse(args)

	store, err := regress.Open(*dir)
	if err != nil {
		return err
	}
	defer store.Close()
	var runner regress.Runner
	if *runCmd != "" {
		runner = worktreeRunner(*runCmd)
	}
	res, err := regress.Bisect(store, *metric, *good, *bad, *threshold, runner)
	if err != nil {
		return err
	}
	switch *format {
	case "json":
		data, err := marshal(res)
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
	case "text":
		fmt.Printf("first bad commit: %s\n", res.FirstBad)
		fmt.Printf("  metric %s: good %g (%s) -> bad %g (threshold %g)\n",
			res.Metric, res.GoodValue, res.LastGood, res.BadValue, res.Threshold)
		for _, p := range res.Probes {
			state := "good"
			if p.Bad {
				state = "bad"
			}
			fmt.Printf("  probe %-6s #%d %s = %g (%s)\n", state, p.Index, p.Commit, p.Value, p.Source)
		}
	default:
		return fmt.Errorf("unknown -format %q", *format)
	}
	return nil
}

// worktreeRunner builds a Runner that checks the probe commit out into a
// scratch git worktree, runs cmd there, and returns the BENCH_core.json it
// produced.
func worktreeRunner(cmd string) regress.Runner {
	return func(commit string) ([]byte, error) {
		wt, err := os.MkdirTemp("", "driftd-bisect-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(wt)
		if _, err := git("worktree", "add", "--detach", wt, commit); err != nil {
			return nil, err
		}
		defer git("worktree", "remove", "--force", wt)
		sh := exec.Command("sh", "-c", cmd)
		sh.Dir = wt
		sh.Stdout = os.Stderr
		sh.Stderr = os.Stderr
		if err := sh.Run(); err != nil {
			return nil, fmt.Errorf("probe command %q at %s: %w", cmd, commit, err)
		}
		return os.ReadFile(filepath.Join(wt, "BENCH_core.json"))
	}
}

func marshal(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "\t")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("driftd serve", flag.ExitOnError)
	var (
		dir  = fs.String("dir", "drift", "history store directory")
		addr = fs.String("addr", ":8081", "listen address (use 127.0.0.1:0 for a random port)")
	)
	fs.Parse(args)

	srv, err := regress.NewServer(*dir, regress.Config{})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout so scripts starting driftd on a
	// random port (make smoke) can discover it.
	fmt.Printf("driftd listening on http://%s\n", ln.Addr())
	return http.Serve(ln, srv.Handler())
}
