// Command ckjson validates a JSON document on stdin: it must parse, and
// every dot-separated field path given as an argument must be present. Used
// by `make smoke` to check the shape of machine-readable run artifacts.
//
//	renamesim -workload poly_horner -json | ckjson ipc cycles pipeline.Committed metrics.counters
//
// A path step that is a non-negative integer indexes into an array
// (trace_event files: `ckjson traceEvents.0.ph < out.json`).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func lookup(doc any, path string) (any, error) {
	cur := doc
	for _, stepStr := range strings.Split(path, ".") {
		switch v := cur.(type) {
		case map[string]any:
			next, ok := v[stepStr]
			if !ok {
				return nil, fmt.Errorf("missing field %q (of path %q)", stepStr, path)
			}
			cur = next
		case []any:
			i, err := strconv.Atoi(stepStr)
			if err != nil || i < 0 || i >= len(v) {
				return nil, fmt.Errorf("bad array index %q (of path %q, array length %d)", stepStr, path, len(v))
			}
			cur = v[i]
		default:
			return nil, fmt.Errorf("path %q: %q is not an object or array", path, stepStr)
		}
	}
	return cur, nil
}

func main() {
	var doc any
	dec := json.NewDecoder(os.Stdin)
	if err := dec.Decode(&doc); err != nil {
		fmt.Fprintln(os.Stderr, "ckjson: invalid JSON:", err)
		os.Exit(1)
	}
	bad := false
	for _, path := range os.Args[1:] {
		if _, err := lookup(doc, path); err != nil {
			fmt.Fprintln(os.Stderr, "ckjson:", err)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
