// Command ckjson validates a JSON document on stdin: it must parse, and
// every dot-separated field path given as an argument must be present. Used
// by `make smoke` to check the shape of machine-readable run artifacts.
//
//	renamesim -workload poly_horner -json | ckjson ipc cycles pipeline.Committed metrics.counters
//
// A path step that is a non-negative integer indexes into an array
// (trace_event files: `ckjson traceEvents.0.ph < out.json`). A step of the
// form `#name` selects the array element whose "name" field equals name
// (metrics snapshots: `ckjson 'metrics.#sweep_jobs_executed.value'`). A step
// `@len` resolves to the length of the array (or object) at that point
// (`ckjson 'findings.@len=0'`). An argument of the form `path=value`
// additionally asserts the value at the path: numbers compare numerically,
// everything else by its printed form (`ckjson results.0.checksum_ok=true`).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func lookup(doc any, path string) (any, error) {
	cur := doc
	for _, stepStr := range strings.Split(path, ".") {
		if stepStr == "@len" {
			switch v := cur.(type) {
			case []any:
				cur = float64(len(v))
			case map[string]any:
				cur = float64(len(v))
			default:
				return nil, fmt.Errorf("path %q: @len needs an array or object", path)
			}
			continue
		}
		if sel, ok := strings.CutPrefix(stepStr, "#"); ok {
			arr, isArr := cur.([]any)
			if !isArr {
				return nil, fmt.Errorf("path %q: %q selects by name but the value is not an array", path, stepStr)
			}
			found := false
			for _, el := range arr {
				if obj, isObj := el.(map[string]any); isObj && obj["name"] == sel {
					cur, found = el, true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("path %q: no array element with name %q", path, sel)
			}
			continue
		}
		switch v := cur.(type) {
		case map[string]any:
			next, ok := v[stepStr]
			if !ok {
				return nil, fmt.Errorf("missing field %q (of path %q)", stepStr, path)
			}
			cur = next
		case []any:
			i, err := strconv.Atoi(stepStr)
			if err != nil || i < 0 || i >= len(v) {
				return nil, fmt.Errorf("bad array index %q (of path %q, array length %d)", stepStr, path, len(v))
			}
			cur = v[i]
		default:
			return nil, fmt.Errorf("path %q: %q is not an object or array", path, stepStr)
		}
	}
	return cur, nil
}

// assert compares the value at a path against the expected literal from a
// `path=value` argument. JSON numbers decode as float64, so numeric
// expectations compare numerically; everything else by printed form.
func assert(got any, want string) error {
	if f, isNum := got.(float64); isNum {
		w, err := strconv.ParseFloat(want, 64)
		if err != nil {
			return fmt.Errorf("got number %v, want %q", f, want)
		}
		if f != w {
			return fmt.Errorf("got %v, want %v", f, w)
		}
		return nil
	}
	if s := fmt.Sprint(got); s != want {
		return fmt.Errorf("got %s, want %s", s, want)
	}
	return nil
}

func main() {
	var doc any
	dec := json.NewDecoder(os.Stdin)
	if err := dec.Decode(&doc); err != nil {
		fmt.Fprintln(os.Stderr, "ckjson: invalid JSON:", err)
		os.Exit(1)
	}
	bad := false
	for _, arg := range os.Args[1:] {
		path, want, hasWant := strings.Cut(arg, "=")
		got, err := lookup(doc, path)
		if err == nil && hasWant {
			if aerr := assert(got, want); aerr != nil {
				err = fmt.Errorf("path %q: %w", path, aerr)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ckjson:", err)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
