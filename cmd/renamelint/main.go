// Command renamelint runs the repository's invariant analyzers (see
// internal/lint) over Go packages and reports findings as file:line
// diagnostics or, with -json, as a machine-readable artifact whose schema is
// pinned by cmd/ckjson in make smoke. The exit status is 1 when any finding
// survives, so `make lint` is a hard CI gate.
//
// Usage:
//
//	renamelint [-json] [-enable determinism,detflow,hotpath,tagpair,obsguard,guardedby,snapshot,schemalock] [packages]
//	renamelint -update-schemas [packages]
//
// With no package arguments it analyzes ./... The -update-schemas mode
// regenerates the committed schema goldens for every //repro:schema struct
// (after a deliberate shape change with a version bump) instead of checking
// them; -schema-dir overrides where goldens are read and written.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

// schemaVersion gates the -json artifact layout. v2 added per-finding
// analyzer_version and the four v2 analyzers.
const schemaVersion = 2

type artifact struct {
	SchemaVersion int            `json:"schema_version"`
	Analyzers     []string       `json:"analyzers"`
	Findings      []lint.Finding `json:"findings"`
	Count         int            `json:"count"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the findings artifact as JSON on stdout")
	enable := flag.String("enable", "", "comma-separated analyzers to run (default: all)")
	updateSchemas := flag.Bool("update-schemas", false, "regenerate schema goldens for //repro:schema structs instead of checking them")
	schemaDir := flag.String("schema-dir", "", "directory for schema goldens (default: nearest schemas/ dir up from each package)")
	flag.Parse()

	if *schemaDir != "" {
		lint.SchemaDir = *schemaDir
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *updateSchemas {
		written, err := lint.UpdateSchemas(patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "renamelint:", err)
			os.Exit(2)
		}
		for _, path := range written {
			fmt.Println("wrote", path)
		}
		return
	}

	analyzers, err := selectAnalyzers(*enable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "renamelint:", err)
		os.Exit(2)
	}

	findings, err := lint.Run(patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "renamelint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		names := make([]string, len(analyzers))
		for i, a := range analyzers {
			names[i] = a.Name
		}
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(artifact{
			SchemaVersion: schemaVersion,
			Analyzers:     names,
			Findings:      findings,
			Count:         len(findings),
		}); err != nil {
			fmt.Fprintln(os.Stderr, "renamelint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func selectAnalyzers(enable string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if enable == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(enable, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
