// Command paper regenerates every table and figure of the paper's
// evaluation (Figures 1-3, 9-12; Tables I-III) and prints them as text
// tables. With -out, each artifact is additionally written as CSV into the
// given directory, which EXPERIMENTS.md references.
//
// Usage:
//
//	paper                 # everything at reference scale
//	paper -fig 10         # one figure
//	paper -scale 1        # quick pass with small workloads
//	paper -out results/   # also write CSV files
//	paper -cache off      # re-simulate every sweep point
//	paper -fig 10 -ff 100000 -warmup 5000   # fast-forward every sweep job
//	paper -fig 10 -sample 2000:5000:50000   # sampled (estimated) sweep
//
// The sweep-backed figures (10-12) run through the internal/sweep engine
// and, unless -cache off, persist per-point results in a content-addressed
// cache (default: the regreuse/sweeps directory under os.UserCacheDir), so
// a rerun only simulates what is missing.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	regreuse "repro"
	"repro/internal/area"
	"repro/internal/pipeline"
	"repro/internal/regfile"
	"repro/internal/stats"
)

var outDir string

// step emits progress lines to stderr around a long-running artifact: one
// when the simulations start and one with the wall-clock (and any extra
// detail, e.g. an IPC summary) when they finish. Keeping these on stderr
// leaves stdout as the clean table/CSV stream.
func step(name string) func(format string, args ...any) {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "[paper] %s: running...\n", name)
	return func(format string, args ...any) {
		extra := fmt.Sprintf(format, args...)
		if extra != "" {
			extra = " (" + extra + ")"
		}
		fmt.Fprintf(os.Stderr, "[paper] %s: done in %s%s\n",
			name, time.Since(start).Round(time.Millisecond), extra)
	}
}

func emit(name string, t *stats.Table) {
	fmt.Print(t)
	fmt.Println()
	if outDir == "" {
		return
	}
	if err := os.WriteFile(filepath.Join(outDir, name+".csv"), []byte(t.CSV()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
	}
}

func main() {
	var (
		fig    = flag.Int("fig", 0, "figure number to regenerate (1,2,3,9,10,11,12; 0 = all)")
		table  = flag.Int("table", 0, "table number to regenerate (1,2,3; 0 = all)")
		scale  = flag.Int("scale", 4, "workload scale (1 = small, 4 = reference)")
		out    = flag.String("out", "", "directory for CSV artifacts")
		ext    = flag.Bool("ext", false, "also run the extensions (energy model, reuse-depth ablation)")
		occIv  = flag.Uint64("occupancy-interval", 64, "Figure 9 occupancy sampling interval in cycles")
		cache  = flag.String("cache", "auto", `sweep result cache: "auto", "off", or a directory`)
		ff     = flag.Uint64("ff", 0, "fast-forward N instructions per sweep job (figures 10-11; 0 = off)")
		warmup = flag.Uint64("warmup", 0, "cache/bpred warmup instructions replayed at the fast-forward boot")
		sample = flag.String("sample", "", "interval-sampling plan warmup:detail:interval for the sweep jobs")
		oracle = flag.Bool("oracle", false, "run figures 1-3 through the reference (memory-unbounded) collector instead of the streaming one")
	)
	flag.Parse()
	outDir = *out
	switch *cache {
	case "off":
	case "auto":
		if base, err := os.UserCacheDir(); err == nil {
			regreuse.SetSweepCacheDir(filepath.Join(base, "regreuse", "sweeps"))
		}
	default:
		regreuse.SetSweepCacheDir(*cache)
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	all := *fig == 0 && *table == 0
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if all || *table == 1 {
		fmt.Println("== Table I: system configuration ==")
		printTable1()
	}

	if all || *fig == 1 || *fig == 2 || *fig == 3 {
		done := step("figures 1-3 (motivation analysis)")
		motivate := regreuse.Motivation
		if *oracle {
			motivate = regreuse.MotivationOracle
		}
		rows, err := motivate(*scale)
		if err != nil {
			fail(err)
		}
		done("%d workloads", len(rows))
		suites := regreuse.AggregateMotivation(rows)
		if all || *fig == 1 {
			fmt.Println("== Figure 1: single-use consumers (% of instructions) ==")
			t := stats.NewTable("suite", "redefining%", "other%", "total%")
			for _, s := range suites {
				t.Row(string(s.Suite), s.SingleUseRedef, s.SingleUseOther, s.SingleUseRedef+s.SingleUseOther)
			}
			emit("fig1_singleuse", t)
		}
		if all || *fig == 2 {
			fmt.Println("== Figure 2: values by consumer count (%) ==")
			t := stats.NewTable("suite", "1", "2", "3", "4", "5", "6+")
			for _, s := range suites {
				t.Row(string(s.Suite), s.ConsumerPct[0], s.ConsumerPct[1], s.ConsumerPct[2],
					s.ConsumerPct[3], s.ConsumerPct[4], s.ConsumerPct[5])
			}
			emit("fig2_consumers", t)
		}
		if all || *fig == 3 {
			fmt.Println("== Figure 3: reusable instructions by chain depth (% of dest insts) ==")
			t := stats.NewTable("suite", "one", "two", "three", "more")
			for _, s := range suites {
				t.Row(string(s.Suite), s.ReusablePct[0], s.ReusablePct[1], s.ReusablePct[2], s.ReusablePct[3])
			}
			emit("fig3_reuse_depth", t)
		}
	}

	if all || *table == 2 {
		fmt.Println("== Table II: area (mm^2, CACTI-substitute model) ==")
		t := stats.NewTable("unit", "configuration", "area mm^2")
		for _, r := range regreuse.AreaTable() {
			t.Row(r.Unit, r.Config, fmt.Sprintf("%.4g", r.MM2))
		}
		emit("table2_area", t)
	}

	if all || *table == 3 {
		fmt.Println("== Table III: equal-area register file configurations ==")
		t := stats.NewTable("baseline regs", "hybrid 0sh/1sh/2sh/3sh", "regs saved %")
		for _, r := range regreuse.EqualAreaTable() {
			t.Row(r.BaselineRegs,
				fmt.Sprintf("%d/%d/%d/%d", r.Hybrid[0], r.Hybrid[1], r.Hybrid[2], r.Hybrid[3]),
				fmt.Sprintf("%.1f", r.SavingsPct))
		}
		emit("table3_configs", t)
	}

	if all || *fig == 9 {
		fmt.Println("== Figure 9: registers with k shadow cells needed to cover X% of execution (SPECfp-like) ==")
		done := step("figure 9 (occupancy study)")
		curves, err := regreuse.OccupancyStudy(*scale, regreuse.SPECfp, *occIv)
		if err != nil {
			fail(err)
		}
		done("")
		t := stats.NewTable("shadow level", "50%", "75%", "90%", "95%", "99%", "100%")
		for _, c := range curves {
			t.Row(fmt.Sprintf(">=%d", c.Level), c.Regs[0], c.Regs[1], c.Regs[2], c.Regs[3], c.Regs[4], c.Regs[5])
		}
		emit("fig9_occupancy", t)
	}

	var curves []regreuse.SuiteCurve
	if all || *fig == 10 || *fig == 11 {
		done := step("figures 10-11 (speedup sweep)")
		pts, err := regreuse.SpeedupSweep(regreuse.SweepOptions{
			Scale:       *scale,
			FastForward: *ff,
			Warmup:      *warmup,
			Sample:      *sample,
		})
		if err != nil {
			fail(err)
		}
		curves = regreuse.AggregateSweep(pts)
		var ipcSum float64
		var ipcN int
		for _, c := range curves {
			for _, v := range c.ReuseIPC {
				ipcSum += v
				ipcN++
			}
		}
		if ipcN > 0 {
			done("%d points, mean reuse IPC %.2f", len(pts), ipcSum/float64(ipcN))
		} else {
			done("%d points", len(pts))
		}
		if outDir != "" {
			t := stats.NewTable("workload", "suite", "baseline regs", "base cycles", "reuse cycles", "speedup")
			for _, p := range pts {
				t.Row(p.Workload, string(p.Suite), p.BaselineRegs, p.BaseCycles, p.ReuseCycles, p.Speedup)
			}
			if err := os.WriteFile(filepath.Join(outDir, "fig10_points.csv"), []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "write:", err)
			}
		}
	}
	if all || *fig == 10 {
		fmt.Println("== Figure 10: speedup over equal-area baseline (geomean per suite) ==")
		hdr := []string{"suite"}
		for _, s := range curves[0].Sizes {
			hdr = append(hdr, fmt.Sprintf("%d", s))
		}
		t := stats.NewTable(hdr...)
		for _, c := range curves {
			row := []any{string(c.Suite)}
			for _, v := range c.Speedup {
				row = append(row, v)
			}
			t.Row(row...)
		}
		emit("fig10_speedup", t)
	}
	if all || *fig == 11 {
		fmt.Println("== Figure 11: IPC, baseline vs proposed, per register-file size ==")
		t := stats.NewTable("suite", "size", "baseline IPC", "reuse IPC")
		for _, c := range curves {
			for i, s := range c.Sizes {
				t.Row(string(c.Suite), s, c.BaseIPC[i], c.ReuseIPC[i])
			}
		}
		emit("fig11_ipc", t)
		for _, c := range curves {
			if saving, ok := regreuse.EqualIPCSaving(c, 64); ok && saving > 0 {
				fmt.Printf("  %s: reuse matches the 64-register baseline IPC with a %.1f%% smaller file\n",
					c.Suite, saving)
			}
		}
		fmt.Println()
	}

	if *ext {
		runExtensions(*scale, fail)
	}

	if all || *fig == 12 {
		fmt.Println("== Figure 12: register type predictor outcomes (% of allocations) ==")
		done := step("figure 12 (predictor breakdown)")
		rows, err := regreuse.PredictorBreakdown(*scale)
		if err != nil {
			fail(err)
		}
		done("")
		t := stats.NewTable("suite", "pred-reuse right", "pred-reuse wrong", "pred-normal right", "lost opportunity", "repairs/1k inst")
		for _, r := range rows {
			t.Row(string(r.Suite), r.ReuseRight, r.ReuseWrong, r.NormalRight, r.NormalWrong, r.RepairRate)
		}
		emit("fig12_predictor", t)
	}
}

// runExtensions prints the beyond-the-paper studies: the register-file
// energy comparison and the reuse-depth ablation.
func runExtensions(scale int, fail func(error)) {
	done := step("extensions (energy, depth ablation, related work)")
	defer done("")
	fmt.Println("== Extension: register-file energy at the 64-register pairing ==")
	t := stats.NewTable("workload", "relative RF energy", "relative runtime")
	for _, name := range []string{"poly_horner", "dgemm", "gmm_score", "qsortint", "fir"} {
		row, err := regreuse.EnergyComparison(name, scale, 64)
		if err != nil {
			fail(err)
		}
		t.Row(name, row.Relative, row.RelativePerf)
	}
	emit("ext_energy", t)

	fmt.Println("== Extension: reuse-chain depth ablation (geomean speedup at 64 regs) ==")
	t2 := stats.NewTable("depth cap", "specfp speedup")
	for depth := 1; depth <= 3; depth++ {
		pts, err := regreuse.SpeedupSweep(regreuse.SweepOptions{
			Sizes: []int{64}, Scale: scale, ReuseDepth: depth,
			Workloads: []string{"poly_horner", "dgemm", "daxpy_chain", "nbody", "lu", "spmv"},
		})
		if err != nil {
			fail(err)
		}
		for _, c := range regreuse.AggregateSweep(pts) {
			if c.Suite == regreuse.SPECfp {
				t2.Row(depth, c.Speedup[0])
			}
		}
	}
	emit("ext_depth_ablation", t2)

	fmt.Println("== Extension: related-work comparison (cycles at the 56-register pairing) ==")
	t3 := stats.NewTable("workload", "baseline", "early release [Ergin/Monreal]", "reuse (paper)")
	for _, name := range []string{"poly_horner", "dgemm", "gmm_score", "spmv"} {
		var cyc [3]uint64
		for i, sch := range []regreuse.Scheme{regreuse.Baseline, regreuse.EarlyRelease, regreuse.Reuse} {
			cfg := regreuse.Config{Scheme: sch}
			if sch == regreuse.Baseline {
				cfg.FPRegs = regfile.Uniform(56, 0)
			} else {
				cfg.FPRegs = area.EqualAreaConfig(56, 64)
			}
			res, err := regreuse.RunWorkload(name, scale, cfg)
			if err != nil {
				fail(err)
			}
			cyc[i] = res.Cycles
		}
		t3.Row(name, cyc[0], cyc[1], cyc[2])
	}
	emit("ext_schemes", t3)
}

func printTable1() {
	cfg := pipeline.DefaultConfig(pipeline.Baseline)
	t := stats.NewTable("parameter", "value")
	t.Row("ISA", "64-bit ARM-like (31 int + 32 FP logical registers)")
	t.Row("pipeline widths", fmt.Sprintf("fetch/rename/commit %d, issue %d", cfg.FetchWidth, cfg.IssueWidth))
	t.Row("ROB / IQ / fetchQ", fmt.Sprintf("%d / %d / %d", cfg.ROBSize, cfg.IQSize, cfg.FetchQSize))
	t.Row("LQ / SQ", fmt.Sprintf("%d / %d", cfg.LQSize, cfg.SQSize))
	t.Row("branch predictor", "gshare 4K + 2K BTB + 16-deep RAS, ~15-cycle misprediction penalty")
	t.Row("L1I", "48 KB 3-way, 1 cycle")
	t.Row("L1D", "32 KB 2-way, 1 cycle")
	t.Row("L2", "1 MB 16-way, 12 cycles")
	t.Row("line size", "64 B")
	t.Row("TLB", "48-entry fully associative, 30-cycle walk")
	t.Row("prefetcher", "stride, degree 1")
	t.Row("DRAM", "DDR3-1600-like: tCAS=tRCD=tRP=28 cycles, 2 ranks x 8 banks, 8 KB rows")
	fmt.Print(t)
	fmt.Println()
}
