// Command profile runs the paper's motivational trace analyses (Figures
// 1-3) over the workload suites using the architectural emulator, and doubles
// as the pprof harness for the simulator itself: -figure selects a named
// figure sweep and -cpuprofile/-memprofile capture where it spends its time
// and memory.
//
// Usage:
//
//	profile            # all motivation figures, per-suite averages
//	profile -fig 1     # Figure 1 only
//	profile -detail    # per-workload rows instead of suite averages
//
// Profiling a figure sweep:
//
//	profile -figure fig10 -scale 1 -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof -top cpu.pprof
//	go tool pprof -alloc_space -top mem.pprof
//
// Valid -figure names: fig1/fig2/fig3 (motivation analyses), fig9 (occupancy
// study), fig10/fig11 (register-file size sweep), fig12 (predictor
// breakdown), ff (functional fast-forward over every workload — profiles the
// emulator's StepN batch interpreter in isolation), decode (micro-op table
// lowering plus a short table-consuming detailed run per workload). The sweep
// result is reduced to one summary line so dead-code elimination cannot skip
// the work.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	regreuse "repro"
	"repro/internal/asm"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to print: 1, 2, 3 (0 = all)")
		scale      = flag.Int("scale", 4, "workload scale (1 = small, 4 = reference)")
		detail     = flag.Bool("detail", false, "per-workload rows instead of suite averages")
		figure     = flag.String("figure", "", "named figure sweep to run under profiling (fig1..fig3, fig9, fig10, fig11, fig12, ff, decode)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the -figure sweep to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the -figure sweep to this file")
	)
	flag.Parse()

	if *figure != "" {
		if err := profileFigure(*figure, *scale, *cpuprofile, *memprofile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *cpuprofile != "" || *memprofile != "" {
		fmt.Fprintln(os.Stderr, "-cpuprofile/-memprofile require -figure")
		os.Exit(1)
	}

	rows, err := regreuse.Motivation(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *detail {
		t := stats.NewTable("workload", "suite", "singleuse-redef%", "singleuse-other%",
			"reuse d1%", "d2%", "d3%", "d4+%")
		for _, r := range rows {
			a, b := r.Report.SingleUsePct()
			rp := r.Report.ReusablePct()
			t.Row(r.Workload, string(r.Suite), a, b, rp[0], rp[1], rp[2], rp[3])
		}
		fmt.Print(t)
		return
	}

	suites := regreuse.AggregateMotivation(rows)
	if *fig == 0 || *fig == 1 {
		fmt.Println("Figure 1: % of instructions that are the sole consumer of a value")
		t := stats.NewTable("suite", "redefining%", "other%", "total%")
		for _, s := range suites {
			t.Row(string(s.Suite), s.SingleUseRedef, s.SingleUseOther, s.SingleUseRedef+s.SingleUseOther)
		}
		fmt.Print(t)
		fmt.Println()
	}
	if *fig == 0 || *fig == 2 {
		fmt.Println("Figure 2: % of consumed values by consumer count")
		t := stats.NewTable("suite", "1", "2", "3", "4", "5", "6+")
		for _, s := range suites {
			t.Row(string(s.Suite), s.ConsumerPct[0], s.ConsumerPct[1], s.ConsumerPct[2],
				s.ConsumerPct[3], s.ConsumerPct[4], s.ConsumerPct[5])
		}
		fmt.Print(t)
		fmt.Println()
	}
	if *fig == 0 || *fig == 3 {
		fmt.Println("Figure 3: % of dest-register instructions that can reuse, by chain depth")
		t := stats.NewTable("suite", "one reuse", "two", "three", "more")
		for _, s := range suites {
			t.Row(string(s.Suite), s.ReusablePct[0], s.ReusablePct[1], s.ReusablePct[2], s.ReusablePct[3])
		}
		fmt.Print(t)
	}
}

// profileFigure runs one named figure sweep with optional CPU and heap
// profiling around it.
func profileFigure(name string, scale int, cpuFile, memFile string) error {
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var summary string
	switch name {
	case "fig1", "fig2", "fig3":
		rows, err := regreuse.Motivation(scale)
		if err != nil {
			return err
		}
		summary = fmt.Sprintf("%d motivation rows", len(rows))
	case "fig9":
		curves, err := regreuse.OccupancyStudy(scale, regreuse.SPECfp, 0)
		if err != nil {
			return err
		}
		summary = fmt.Sprintf("%d occupancy curves", len(curves))
	case "fig10", "fig11":
		pts, err := regreuse.SpeedupSweep(regreuse.SweepOptions{Scale: scale})
		if err != nil {
			return err
		}
		summary = fmt.Sprintf("%d sweep points", len(pts))
	case "fig12":
		rows, err := regreuse.PredictorBreakdown(scale)
		if err != nil {
			return err
		}
		summary = fmt.Sprintf("%d predictor rows", len(rows))
	case "ff":
		var insts uint64
		for _, wn := range regreuse.Workloads() {
			n, err := regreuse.FastForwardWorkload(wn, scale)
			if err != nil {
				return err
			}
			insts += n
		}
		summary = fmt.Sprintf("%d instructions fast-forwarded", insts)
	case "decode":
		// Profile the pre-decode path in isolation: lower every workload's
		// instruction stream into its micro-op table many times (prog.New
		// includes validation + buildUOps), then run a short detailed
		// simulation per workload so the profile also shows the table's
		// consumers (fetch/rename reading the pre-decoded columns).
		const relowers = 500
		var rows, insts uint64
		for _, wn := range regreuse.Workloads() {
			w, ok := workloads.ByName(wn, scale)
			if !ok {
				return fmt.Errorf("unknown workload %q", wn)
			}
			p, err := asm.Assemble(w.Source)
			if err != nil {
				return err
			}
			raw := p.Insts()
			for i := 0; i < relowers; i++ {
				q, err := prog.New(raw, nil, nil)
				if err != nil {
					return err
				}
				rows += uint64(len(q.UOps().Inst))
			}
			res, err := regreuse.RunWorkload(wn, scale, regreuse.Config{
				Scheme: regreuse.Reuse, MaxInsts: 200_000,
			})
			if err != nil {
				return err
			}
			insts += res.Insts
		}
		summary = fmt.Sprintf("%d micro-ops lowered, %d instructions simulated", rows, insts)
	default:
		return fmt.Errorf("unknown figure %q (want fig1..fig3, fig9, fig10, fig11, fig12, ff or decode)", name)
	}
	fmt.Printf("%s: %s\n", name, summary)

	if memFile != "" {
		f, err := os.Create(memFile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained allocations
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}
