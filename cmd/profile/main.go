// Command profile runs the paper's motivational trace analyses (Figures
// 1-3) over the workload suites using the architectural emulator.
//
// Usage:
//
//	profile            # all figures, per-suite averages
//	profile -fig 1     # Figure 1 only
//	profile -detail    # per-workload rows instead of suite averages
package main

import (
	"flag"
	"fmt"
	"os"

	regreuse "repro"
	"repro/internal/stats"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "figure to print: 1, 2, 3 (0 = all)")
		scale  = flag.Int("scale", 4, "workload scale (1 = small, 4 = reference)")
		detail = flag.Bool("detail", false, "per-workload rows instead of suite averages")
	)
	flag.Parse()

	rows, err := regreuse.Motivation(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *detail {
		t := stats.NewTable("workload", "suite", "singleuse-redef%", "singleuse-other%",
			"reuse d1%", "d2%", "d3%", "d4+%")
		for _, r := range rows {
			a, b := r.Report.SingleUsePct()
			rp := r.Report.ReusablePct()
			t.Row(r.Workload, string(r.Suite), a, b, rp[0], rp[1], rp[2], rp[3])
		}
		fmt.Print(t)
		return
	}

	suites := regreuse.AggregateMotivation(rows)
	if *fig == 0 || *fig == 1 {
		fmt.Println("Figure 1: % of instructions that are the sole consumer of a value")
		t := stats.NewTable("suite", "redefining%", "other%", "total%")
		for _, s := range suites {
			t.Row(string(s.Suite), s.SingleUseRedef, s.SingleUseOther, s.SingleUseRedef+s.SingleUseOther)
		}
		fmt.Print(t)
		fmt.Println()
	}
	if *fig == 0 || *fig == 2 {
		fmt.Println("Figure 2: % of consumed values by consumer count")
		t := stats.NewTable("suite", "1", "2", "3", "4", "5", "6+")
		for _, s := range suites {
			t.Row(string(s.Suite), s.ConsumerPct[0], s.ConsumerPct[1], s.ConsumerPct[2],
				s.ConsumerPct[3], s.ConsumerPct[4], s.ConsumerPct[5])
		}
		fmt.Print(t)
		fmt.Println()
	}
	if *fig == 0 || *fig == 3 {
		fmt.Println("Figure 3: % of dest-register instructions that can reuse, by chain depth")
		t := stats.NewTable("suite", "one reuse", "two", "three", "more")
		for _, s := range suites {
			t.Row(string(s.Suite), s.ReusablePct[0], s.ReusablePct[1], s.ReusablePct[2], s.ReusablePct[3])
		}
		fmt.Print(t)
	}
}
