// Command renamesim simulates one workload on the out-of-order core under
// either renaming scheme and prints detailed statistics.
//
// Usage:
//
//	renamesim -workload dgemm -scheme reuse -intregs 64 -fpregs 64 -scale 4
//	renamesim -list
//	renamesim -asm program.s -scheme baseline
package main

import (
	"flag"
	"fmt"
	"os"

	regreuse "repro"
	"repro/internal/area"
	"repro/internal/asm"
	"repro/internal/regfile"
	"repro/internal/stats"
)

func main() {
	var (
		workload = flag.String("workload", "dgemm", "workload name (see -list)")
		list     = flag.Bool("list", false, "list available workloads and exit")
		scheme   = flag.String("scheme", "reuse", "renaming scheme: baseline | reuse | early")
		scale    = flag.Int("scale", 1, "workload scale (1 = small, 4 = reference)")
		intRegs  = flag.Int("intregs", 128, "integer physical registers (baseline-equivalent size)")
		fpRegs   = flag.Int("fpregs", 128, "floating-point physical registers (baseline-equivalent size)")
		asmFile  = flag.String("asm", "", "run an assembly file instead of a named workload")
		oracle   = flag.Bool("oracle", true, "run the lockstep architectural oracle")
		irq      = flag.Uint64("interrupt", 0, "timer interrupt period in cycles (0 = off)")
		depth    = flag.Int("reusedepth", 0, "cap reuse-chain depth 1..3 (0 = paper default 3)")
	)
	flag.Parse()

	if *list {
		for _, n := range regreuse.Workloads() {
			fmt.Println(n)
		}
		return
	}

	cfg := regreuse.Config{
		CheckOracle:    *oracle,
		InterruptEvery: *irq,
		ReuseDepth:     *depth,
	}
	switch *scheme {
	case "baseline":
		cfg.Scheme = regreuse.Baseline
		cfg.IntRegs = regfile.Uniform(*intRegs, 0)
		cfg.FPRegs = regfile.Uniform(*fpRegs, 0)
	case "reuse":
		cfg.Scheme = regreuse.Reuse
		cfg.IntRegs = area.EqualAreaConfig(*intRegs, 64)
		cfg.FPRegs = area.EqualAreaConfig(*fpRegs, 64)
	case "early":
		cfg.Scheme = regreuse.EarlyRelease
		cfg.IntRegs = area.EqualAreaConfig(*intRegs, 64)
		cfg.FPRegs = area.EqualAreaConfig(*fpRegs, 64)
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	var (
		res regreuse.Result
		err error
	)
	if *asmFile != "" {
		src, rerr := os.ReadFile(*asmFile)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, rerr)
			os.Exit(1)
		}
		p, aerr := asm.Assemble(string(src))
		if aerr != nil {
			fmt.Fprintln(os.Stderr, aerr)
			os.Exit(1)
		}
		res, err = regreuse.RunProgram(p, cfg)
	} else {
		res, err = regreuse.RunWorkload(*workload, *scale, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload   %s (%s scheme, int %v, fp %v)\n",
		res.Workload, res.Scheme, cfg.IntRegs, cfg.FPRegs)
	t := stats.NewTable("metric", "value")
	t.Row("cycles", res.Cycles)
	t.Row("instructions", res.Insts)
	t.Row("IPC", res.IPC)
	t.Row("branch MPKI", res.MPKI)
	t.Row("checksum ok", res.ChecksumOK)
	t.Row("allocations", res.Allocations)
	t.Row("reuses", res.Reuses)
	if res.Allocations+res.Reuses > 0 {
		t.Row("reuse fraction", stats.Pct(float64(res.Reuses)/float64(res.Allocations+res.Reuses)))
	}
	t.Row("reuse same-logical", res.ReuseSameLog)
	t.Row("reuse speculative", res.ReusePredict)
	t.Row("reuses ver1/2/3", fmt.Sprintf("%d/%d/%d", res.ReusesByVer[1], res.ReusesByVer[2], res.ReusesByVer[3]))
	t.Row("repair micro-ops", res.MicroOps)
	t.Row("rename stalls (no reg)", res.StallNoReg)
	t.Row("rename stalls (ROB)", res.StallROB)
	t.Row("rename stalls (IQ)", res.StallIQ)
	t.Row("page faults", res.PageFaults)
	t.Row("interrupts", res.Interrupts)
	t.Row("shadow recoveries", res.ShadowRecoveries)
	h := res.Hier
	if h != nil {
		t.Row("L1I miss rate", stats.Pct(h.L1I.MissRate()))
		t.Row("L1D miss rate", stats.Pct(h.L1D.MissRate()))
		t.Row("L2 miss rate", stats.Pct(h.L2.MissRate()))
		t.Row("TLB misses", h.TLB.Misses)
		t.Row("DRAM accesses", h.DRAM.Accesses)
		t.Row("DRAM row-hit rate", stats.Pct(h.DRAM.RowHitRate()))
		if h.Pref != nil {
			t.Row("prefetches issued", h.Pref.Issued)
		}
	}
	fmt.Print(t)
}
