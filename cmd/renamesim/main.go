// Command renamesim simulates one workload on the out-of-order core under
// either renaming scheme and prints detailed statistics.
//
// Usage:
//
//	renamesim -workload dgemm -scheme reuse -intregs 64 -fpregs 64 -scale 4
//	renamesim -workload dgemm -json -o run.json
//	renamesim -workload dgemm -metrics-interval 1000
//	renamesim -workload dgemm -scale 4 -ff 100000 -warmup 5000 -ckpt-dir /tmp/ckpt
//	renamesim -workload dgemm -scale 4 -sample 2000:5000:50000
//	renamesim -list
//	renamesim -asm program.s -scheme baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	regreuse "repro"
	"repro/internal/area"
	"repro/internal/asm"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/regfile"
	"repro/internal/rename"
	"repro/internal/stats"
)

// runJSON is the machine-readable run artifact emitted by -json: the
// identifying parameters, the derived headline numbers, the full pipeline
// and renamer statistics, and — when a metrics observer was attached — its
// final snapshot.
type runJSON struct {
	Workload   string          `json:"workload"`
	Scheme     string          `json:"scheme"`
	Scale      int             `json:"scale"`
	Cycles     uint64          `json:"cycles"`
	Insts      uint64          `json:"instructions"`
	IPC        float64         `json:"ipc"`
	MPKI       float64         `json:"mpki"`
	ChecksumOK bool            `json:"checksum_ok"`
	Pipeline   *pipeline.Stats `json:"pipeline"`
	RenameInt  *rename.Stats   `json:"rename_int"`
	RenameFP   *rename.Stats   `json:"rename_fp"`
	Metrics    *obs.Snapshot   `json:"metrics,omitempty"`

	FFInsts uint64                   `json:"ff_insts,omitempty"`
	Sampled *regreuse.SampleEstimate `json:"sampled,omitempty"`
}

func main() {
	var (
		workload = flag.String("workload", "dgemm", "workload name (see -list)")
		list     = flag.Bool("list", false, "list available workloads and exit")
		scheme   = flag.String("scheme", "reuse", "renaming scheme: baseline | reuse | early")
		scale    = flag.Int("scale", 1, "workload scale (1 = small, 4 = reference)")
		intRegs  = flag.Int("intregs", 128, "integer physical registers (baseline-equivalent size)")
		fpRegs   = flag.Int("fpregs", 128, "floating-point physical registers (baseline-equivalent size)")
		asmFile  = flag.String("asm", "", "run an assembly file instead of a named workload")
		oracle   = flag.Bool("oracle", true, "run the lockstep architectural oracle")
		irq      = flag.Uint64("interrupt", 0, "timer interrupt period in cycles (0 = off)")
		depth    = flag.Int("reusedepth", 0, "cap reuse-chain depth 1..3 (0 = paper default 3)")
		jsonOut  = flag.Bool("json", false, "emit the run as JSON instead of the stats table")
		outFile  = flag.String("o", "", "write -json output to this file instead of stdout")
		interval = flag.Uint64("metrics-interval", 0, "stream a metrics CSV snapshot row every N cycles (0 = off)")
		ff       = flag.Uint64("ff", 0, "fast-forward N instructions functionally before detailed simulation (0 = off)")
		warmup   = flag.Uint64("warmup", 0, "replay the last N fast-forwarded instructions into caches/bpred at boot")
		sample   = flag.String("sample", "", "interval-sampling plan warmup:detail:interval (mutually exclusive with -ff)")
		sampleW  = flag.Int("sample-workers", 1, "goroutines for sampled detail intervals (<0 = GOMAXPROCS); results are identical for every value")
		ckptDir  = flag.String("ckpt-dir", "", "cache fast-forward checkpoints in this directory")
	)
	flag.Parse()

	if *list {
		for _, n := range regreuse.Workloads() {
			fmt.Println(n)
		}
		return
	}

	cfg := regreuse.Config{
		CheckOracle:    *oracle,
		InterruptEvery: *irq,
		ReuseDepth:     *depth,
		FastForward:    *ff,
		Warmup:         *warmup,
		Sample:         *sample,
		SampleWorkers:  *sampleW,
		CkptDir:        *ckptDir,
	}
	sch, serr := regreuse.ParseScheme(*scheme)
	if serr != nil {
		fmt.Fprintln(os.Stderr, serr)
		os.Exit(2)
	}
	cfg.Scheme = sch
	if sch == regreuse.Baseline {
		cfg.IntRegs = regfile.Uniform(*intRegs, 0)
		cfg.FPRegs = regfile.Uniform(*fpRegs, 0)
	} else {
		cfg.IntRegs = area.EqualAreaConfig(*intRegs, 64)
		cfg.FPRegs = area.EqualAreaConfig(*fpRegs, 64)
	}

	// A metrics observer feeds both the -json snapshot and the periodic CSV
	// stream. The CSV shares stdout with the table output unless -json owns
	// stdout, in which case it moves to stderr.
	var met *obs.Metrics
	if *jsonOut || *interval > 0 {
		csvW := io.Writer(os.Stdout)
		if *jsonOut && *outFile == "" {
			csvW = os.Stderr
		}
		met = obs.NewMetrics(*interval, csvW)
		cfg.Observer = met
	}

	var (
		res regreuse.Result
		err error
	)
	if *asmFile != "" {
		src, rerr := os.ReadFile(*asmFile)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, rerr)
			os.Exit(1)
		}
		p, aerr := asm.Assemble(string(src))
		if aerr != nil {
			fmt.Fprintln(os.Stderr, aerr)
			os.Exit(1)
		}
		res, err = regreuse.RunProgram(p, cfg)
	} else {
		res, err = regreuse.RunWorkload(*workload, *scale, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if met != nil && met.Err() != nil {
		fmt.Fprintln(os.Stderr, met.Err())
		os.Exit(1)
	}

	if *jsonOut {
		out := runJSON{
			Workload:   res.Workload,
			Scheme:     fmt.Sprint(res.Scheme),
			Scale:      *scale,
			Cycles:     res.Cycles,
			Insts:      res.Insts,
			IPC:        res.IPC,
			MPKI:       res.MPKI,
			ChecksumOK: res.ChecksumOK,
			Pipeline:   res.Pipeline,
			RenameInt:  res.RenInt,
			RenameFP:   res.RenFP,
			FFInsts:    res.FFInsts,
			Sampled:    res.Sampled,
		}
		if met != nil {
			snap := met.R.Snapshot()
			out.Metrics = &snap
		}
		buf, merr := json.MarshalIndent(out, "", "  ")
		if merr != nil {
			fmt.Fprintln(os.Stderr, merr)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if *outFile != "" {
			if werr := os.WriteFile(*outFile, buf, 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, werr)
				os.Exit(1)
			}
		} else if _, werr := os.Stdout.Write(buf); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workload   %s (%s scheme, int %v, fp %v)\n",
		res.Workload, res.Scheme, cfg.IntRegs, cfg.FPRegs)
	t := stats.NewTable("metric", "value")
	t.Row("cycles", res.Cycles)
	t.Row("instructions", res.Insts)
	t.Row("IPC", res.IPC)
	if res.FFInsts > 0 {
		t.Row("fast-forwarded insts", res.FFInsts)
	}
	if s := res.Sampled; s != nil {
		t.Row("sample plan", s.Plan)
		t.Row("sampled intervals", s.Samples)
		t.Row("IPC estimate", fmt.Sprintf("%.3f ± %.3f", s.IPCMean, s.IPCStdErr))
		t.Row("reuse-rate estimate", fmt.Sprintf("%.4f ± %.4f", s.ReuseMean, s.ReuseStdErr))
		t.Row("detail coverage", stats.Pct(s.Coverage))
	}
	t.Row("branch MPKI", res.MPKI)
	t.Row("checksum ok", res.ChecksumOK)
	t.Row("allocations", res.Allocations)
	t.Row("reuses", res.Reuses)
	if res.Allocations+res.Reuses > 0 {
		t.Row("reuse fraction", stats.Pct(float64(res.Reuses)/float64(res.Allocations+res.Reuses)))
	}
	t.Row("reuse same-logical", res.ReuseSameLog)
	t.Row("reuse speculative", res.ReusePredict)
	t.Row("reuses ver1/2/3", fmt.Sprintf("%d/%d/%d", res.ReusesByVer[1], res.ReusesByVer[2], res.ReusesByVer[3]))
	t.Row("repair micro-ops", res.MicroOps)
	t.Row("rename stalls (no reg)", res.StallNoReg)
	t.Row("rename stalls (ROB)", res.StallROB)
	t.Row("rename stalls (IQ)", res.StallIQ)
	t.Row("page faults", res.PageFaults)
	t.Row("interrupts", res.Interrupts)
	t.Row("shadow recoveries", res.ShadowRecoveries)
	h := res.Hier
	if h != nil {
		t.Row("L1I miss rate", stats.Pct(h.L1I.MissRate()))
		t.Row("L1D miss rate", stats.Pct(h.L1D.MissRate()))
		t.Row("L2 miss rate", stats.Pct(h.L2.MissRate()))
		t.Row("TLB misses", h.TLB.Misses)
		t.Row("DRAM accesses", h.DRAM.Accesses)
		t.Row("DRAM row-hit rate", stats.Pct(h.DRAM.RowHitRate()))
		if h.Pref != nil {
			t.Row("prefetches issued", h.Pref.Issued)
		}
	}
	fmt.Print(t)
}
