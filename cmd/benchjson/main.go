// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON artifact (BENCH_core.json in `make bench`): one
// record per benchmark with ns/op, allocs/op, and any custom ReportMetric
// units, plus the headline fast-forward speedup — the functional
// fast-forward interpreter's Minst/s over the detailed core's.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -echo -o BENCH_core.json
//
// With -floor N the exit status is nonzero unless the detailed-core
// throughput benchmark reached N Minst/s — the `make benchsmoke` CI gate
// against large simulator slowdowns. -sampled-floor and -analysis-floor
// gate the sampled-mode and streaming-analysis headline rates the same
// way, and -allocs "Benchmark=Max,..." fails unless every named benchmark
// ran with -benchmem and stayed at or under its allocs/op ceiling (the
// zero-allocation guarantee of the streaming figure collectors).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchRecord is one parsed benchmark result line.
//
//repro:schema benchjson-record v1
type benchRecord struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "Minst/s", "IPC").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// artifact is the emitted document. The derived headline fields are present
// when the benchmarks they are computed from ran:
//
//   - DetailedRate: the raw full-fidelity detailed-core rate (Minst/s).
//   - SampledRate: the effective detailed-core rate in sampled mode —
//     whole-program instructions per wall second when the sweeps drive the
//     core through ckpt.SampleN (statistical IPC/reuse estimates, end-to-end
//     checksum), the production way to characterize a workload.
//   - SampledSpeedup: SampledRate / DetailedRate.
//   - FFSpeedup: functional fast-forward rate over DetailedRate.
//
//repro:schema benchjson-artifact v3
type artifact struct {
	SchemaVersion int `json:"schema_version"`
	// Provenance stamp (schema v2): which commit and toolchain produced the
	// artifact, and when. GitCommit is best-effort — absent outside a git
	// checkout — so driftd's ingest can cross-check an artifact against the
	// commit it is recorded under.
	GitCommit      string        `json:"git_commit,omitempty"`
	GoVersion      string        `json:"go_version,omitempty"`
	GeneratedUTC   string        `json:"generated_utc,omitempty"`
	Benchmarks     []benchRecord `json:"benchmarks"`
	DetailedRate   *float64      `json:"detailed_minst_per_s,omitempty"`
	SampledRate    *float64      `json:"sampled_minst_per_s,omitempty"`
	// AnalysisRate is the streaming trace-analysis rate (Minst/s): committed
	// instructions per wall second through the batched commit sink and the
	// bounded-memory figure collector.
	AnalysisRate   *float64 `json:"analysis_minst_per_s,omitempty"`
	SampledSpeedup *float64 `json:"sampled_speedup,omitempty"`
	FFSpeedup      *float64 `json:"ff_speedup,omitempty"`
}

// Schema history:
//
//	1: benchmarks + derived headline rates
//	2: adds the git_commit/go_version/generated_utc provenance stamp
//	3: adds the analysis_minst_per_s streaming-analysis headline
const schemaVersion = 3

// The benchmarks the derived headline rates are read from.
const (
	ffBench       = "BenchmarkFastForward"
	detailedBench = "BenchmarkSimulatorThroughput/reuse"
	sampledBench  = "BenchmarkSampledThroughput"
	analysisBench = "BenchmarkAnalysisThroughput"
	rateUnit      = "Minst/s"
)

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	echo := flag.Bool("echo", false, "copy the input through to stdout while parsing")
	floor := flag.Float64("floor", 0, "fail unless the detailed-core benchmark reaches this many Minst/s")
	sampledFloor := flag.Float64("sampled-floor", 0, "fail unless the sampled-mode benchmark reaches this many Minst/s")
	analysisFloor := flag.Float64("analysis-floor", 0, "fail unless the streaming-analysis benchmark reaches this many Minst/s")
	allocsSpec := flag.String("allocs", "", "comma-separated Benchmark=Max allocs/op ceilings; fail if a named benchmark is missing, lacks -benchmem data, or exceeds its ceiling")
	flag.Parse()

	doc := artifact{
		SchemaVersion: schemaVersion,
		GoVersion:     runtime.Version(),
		GeneratedUTC:  time.Now().UTC().Format(time.RFC3339),
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		doc.GitCommit = strings.TrimSpace(string(out))
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if *echo {
			fmt.Println(line)
		}
		if r, ok := parseLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	ff, haveFF := rateOf(doc.Benchmarks, ffBench)
	det, haveDet := rateOf(doc.Benchmarks, detailedBench)
	sam, haveSam := rateOf(doc.Benchmarks, sampledBench)
	ana, haveAna := rateOf(doc.Benchmarks, analysisBench)
	if haveDet {
		doc.DetailedRate = &det
	}
	if haveSam {
		doc.SampledRate = &sam
	}
	if haveAna {
		doc.AnalysisRate = &ana
	}
	if haveFF && haveDet && det > 0 {
		ratio := ff / det
		doc.FFSpeedup = &ratio
	}
	if haveSam && haveDet && det > 0 {
		ratio := sam / det
		doc.SampledSpeedup = &ratio
	}
	for _, gate := range []struct {
		floor float64
		have  bool
		rate  float64
		bench string
		label string
	}{
		{*floor, haveDet, det, detailedBench, "detailed core"},
		{*sampledFloor, haveSam, sam, sampledBench, "sampled mode"},
		{*analysisFloor, haveAna, ana, analysisBench, "streaming analysis"},
	} {
		if gate.floor <= 0 {
			continue
		}
		if !gate.have {
			fmt.Fprintf(os.Stderr, "benchjson: floor %v set but %s did not run\n", gate.floor, gate.bench)
			os.Exit(1)
		}
		if gate.rate < gate.floor {
			fmt.Fprintf(os.Stderr, "benchjson: %s at %.3f Minst/s, below floor %.3f\n", gate.label, gate.rate, gate.floor)
			os.Exit(1)
		}
	}
	if err := checkAllocs(doc.Benchmarks, *allocsSpec); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(doc, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if _, err := os.Stdout.Write(data); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes one `go test -bench` result line:
//
//	BenchmarkName-8   100   123.4 ns/op   5 B/op   0 allocs/op   2.5 Minst/s
//
// Anything that is not a benchmark result (headers, PASS, ok) returns false.
func parseLine(line string) (benchRecord, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return benchRecord{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchRecord{}, false
	}
	r := benchRecord{Name: f[0], Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchRecord{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			sawNs = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, sawNs
}

// rateOf finds the Minst/s metric of the benchmark whose name starts with
// prefix (names carry a -GOMAXPROCS suffix).
func rateOf(recs []benchRecord, prefix string) (float64, bool) {
	for _, r := range recs {
		if r.Name == prefix || strings.HasPrefix(r.Name, prefix+"-") {
			if v, ok := r.Metrics[rateUnit]; ok {
				return v, true
			}
		}
	}
	return 0, false
}

// findBench locates the record for a benchmark name, tolerating the
// -GOMAXPROCS suffix like rateOf.
func findBench(recs []benchRecord, prefix string) (benchRecord, bool) {
	for _, r := range recs {
		if r.Name == prefix || strings.HasPrefix(r.Name, prefix+"-") {
			return r, true
		}
	}
	return benchRecord{}, false
}

// checkAllocs enforces a "Benchmark=Max,Benchmark=Max" allocs/op spec: every
// named benchmark must be present, carry allocs/op data (the run needs
// -benchmem), and stay at or under its ceiling. A missing benchmark is an
// error — a ceiling that silently stops being checked is how allocation
// regressions sneak back in.
func checkAllocs(recs []benchRecord, spec string) error {
	if spec == "" {
		return nil
	}
	for _, entry := range strings.Split(spec, ",") {
		name, maxStr, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return fmt.Errorf("-allocs entry %q: want Benchmark=Max", entry)
		}
		max, err := strconv.ParseFloat(maxStr, 64)
		if err != nil {
			return fmt.Errorf("-allocs entry %q: bad ceiling: %v", entry, err)
		}
		r, found := findBench(recs, name)
		if !found {
			return fmt.Errorf("-allocs: benchmark %s did not run", name)
		}
		if r.AllocsPerOp == nil {
			return fmt.Errorf("-allocs: benchmark %s has no allocs/op (run with -benchmem)", name)
		}
		if *r.AllocsPerOp > max {
			return fmt.Errorf("%s at %.0f allocs/op, above ceiling %.0f", name, *r.AllocsPerOp, max)
		}
	}
	return nil
}
