// Command sweepd serves the design-space-exploration engine over HTTP in
// one of three modes:
//
//	-mode=local (default): the single-process server. Accepts SweepSpecs,
//	fans their job grids out across a bounded in-process worker pool,
//	deduplicates work through the shared content-addressed result cache,
//	and journals every sweep into a resumable on-disk manifest.
//
//	-mode=coordinator: the fabric control plane. Same submission API, but
//	jobs are leased to remote workers over HTTP (POST /lease, /complete,
//	/heartbeat) and artifacts are served from a shared object store
//	(GET/PUT /objects/{name}). Dead workers' leases expire and their jobs
//	are re-leased; results.json is byte-identical to a local run.
//
//	-mode=worker: a pull-model executor. Leases jobs from -coordinator,
//	runs them through the same engine, and mounts its result cache and
//	checkpoint store over the coordinator's object store (with a local
//	read-through layer under -dir).
//
//	sweepd -addr :8080 -dir sweeps
//	sweepd -mode=coordinator -addr :8080 -dir fab
//	sweepd -mode=worker -coordinator http://127.0.0.1:8080 -dir w1
//
//	curl -X POST localhost:8080/sweeps -d '{
//	  "name": "fig10", "workloads": ["poly_horner"],
//	  "schemes": ["baseline", "reuse"], "scale": 1, "sizes": [56, 64, 96]
//	}'
//	curl localhost:8080/sweeps/<id>           # status: state + progress counts
//	curl localhost:8080/sweeps/<id>/results   # results.json once done
//	curl localhost:8080/metrics               # engine or fabric counters
//
// Submitting an identical spec again completes with zero simulator
// executions (every job is a cache hit); killing any mode mid-sweep is
// safe: SIGINT/SIGTERM drain in-flight jobs, manifests are fsynced, and a
// restart resumes with bit-identical results.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/sweep"
)

func main() {
	var (
		mode        = flag.String("mode", "local", "local | coordinator | worker")
		addr        = flag.String("addr", ":8080", "listen address for local/coordinator (use 127.0.0.1:0 for a random port)")
		dir         = flag.String("dir", "sweeps", "state directory (cache/object store + per-sweep manifests; worker scratch)")
		workers     = flag.Int("workers", 0, "local mode: simulation parallelism (0 = GOMAXPROCS)")
		timeout     = flag.Duration("job-timeout", 10*time.Minute, "per-job attempt timeout (local + worker)")
		retries     = flag.Int("retries", 1, "extra attempts for a failed or timed-out job (local + coordinator)")
		coordinator = flag.String("coordinator", "", "worker mode: coordinator base URL, e.g. http://127.0.0.1:8080")
		leaseTTL    = flag.Duration("lease-ttl", 30*time.Second, "coordinator mode: lease expiry without a heartbeat")
		poll        = flag.Duration("poll", 250*time.Millisecond, "worker mode: idle poll interval")
		workerID    = flag.String("id", "", "worker mode: worker identity (default hostname-pid)")
		drain       = flag.Duration("drain-timeout", time.Minute, "max wait for in-flight work on SIGINT/SIGTERM")
	)
	flag.Parse()

	// All modes drain on SIGINT/SIGTERM: in-flight jobs finish, manifests
	// are fsynced, and the process exits 0 so supervisors treat the stop as
	// clean. A restart resumes from the on-disk state.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch *mode {
	case "local":
		err = runLocal(ctx, *addr, *dir, *workers, *timeout, *retries, *drain)
	case "coordinator":
		err = runCoordinator(ctx, *addr, *dir, *retries, *leaseTTL, *drain)
	case "worker":
		err = runWorker(ctx, *coordinator, *dir, *workerID, *poll, *timeout)
	default:
		err = fmt.Errorf("unknown -mode %q (want local, coordinator, or worker)", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// listenAndAnnounce binds addr and prints the resolved address to stdout so
// scripts starting sweepd on a random port (make smoke, make fabricsmoke)
// can discover it.
func listenAndAnnounce(addr, mode string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("sweepd %s listening on http://%s\n", mode, ln.Addr())
	return ln, nil
}

// serveUntil runs the HTTP server until ctx cancels, then shuts the
// listener down within the drain budget. The caller drains its own engine
// afterwards.
func serveUntil(ctx context.Context, ln net.Listener, h http.Handler, drain time.Duration) error {
	hs := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sdCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return hs.Shutdown(sdCtx)
}

func runLocal(ctx context.Context, addr, dir string, workers int, timeout time.Duration, retries int, drain time.Duration) error {
	srv, err := sweep.NewServer(dir, sweep.ServerOptions{
		Workers:    workers,
		JobTimeout: timeout,
		Retries:    retries,
	})
	if err != nil {
		return err
	}
	ln, err := listenAndAnnounce(addr, "local")
	if err != nil {
		return err
	}
	if err := serveUntil(ctx, ln, srv.Handler(), drain); err != nil {
		return err
	}
	log.Printf("sweepd: draining in-flight sweeps")
	sdCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Printf("sweepd: clean shutdown")
	return nil
}

func runCoordinator(ctx context.Context, addr, dir string, retries int, leaseTTL, drain time.Duration) error {
	c, err := fabric.NewCoordinator(dir, fabric.CoordinatorOptions{
		LeaseTTL: leaseTTL,
		Retries:  retries,
	})
	if err != nil {
		return err
	}
	ln, err := listenAndAnnounce(addr, "coordinator")
	if err != nil {
		return err
	}
	if err := serveUntil(ctx, ln, c.Handler(), drain); err != nil {
		return err
	}
	// Journals are fsynced on every append; Close just releases them. Any
	// lease still in flight will be re-leased by the next coordinator
	// process after it recovers the manifests.
	if err := c.Close(); err != nil {
		return fmt.Errorf("close journals: %w", err)
	}
	log.Printf("sweepd: coordinator state synced, clean shutdown")
	return nil
}

func runWorker(ctx context.Context, coordinator, dir, id string, poll, timeout time.Duration) error {
	w, err := fabric.NewWorker(fabric.WorkerOptions{
		Coordinator: coordinator,
		Dir:         dir,
		ID:          id,
		Poll:        poll,
		JobTimeout:  timeout,
		Logf:        log.Printf,
	})
	if err != nil {
		return err
	}
	// Worker.Run drains on cancellation: the in-flight job finishes and its
	// completion is reported before Run returns.
	return w.Run(ctx)
}
