// Command sweepd serves the design-space-exploration engine over HTTP: it
// accepts SweepSpecs, fans their job grids out across a bounded worker
// pool, deduplicates work through the shared content-addressed result
// cache, and journals every sweep into a resumable on-disk manifest.
//
//	sweepd -addr :8080 -dir sweeps
//
//	curl -X POST localhost:8080/sweeps -d '{
//	  "name": "fig10", "workloads": ["poly_horner"],
//	  "schemes": ["baseline", "reuse"], "scale": 1, "sizes": [56, 64, 96]
//	}'
//	curl localhost:8080/sweeps/<id>           # status: state + progress counts
//	curl localhost:8080/sweeps/<id>/results   # results.json once done
//	curl localhost:8080/metrics               # engine counters + latency histogram
//
// Submitting an identical spec again completes with zero simulator
// executions (every job is a cache hit); killing the daemon mid-sweep and
// re-submitting resumes from the manifest with bit-identical results.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/sweep"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address (use 127.0.0.1:0 for a random port)")
		dir     = flag.String("dir", "sweeps", "state directory (content-addressed cache + per-sweep manifests)")
		workers = flag.Int("workers", 0, "simulation parallelism (0 = GOMAXPROCS)")
		timeout = flag.Duration("job-timeout", 10*time.Minute, "per-job attempt timeout")
		retries = flag.Int("retries", 1, "extra attempts for a failed or timed-out job")
	)
	flag.Parse()

	srv, err := sweep.NewServer(*dir, sweep.ServerOptions{
		Workers:    *workers,
		JobTimeout: *timeout,
		Retries:    *retries,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The resolved address goes to stdout so scripts starting sweepd on a
	// random port (make smoke) can discover it.
	fmt.Printf("sweepd listening on http://%s\n", ln.Addr())
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
