// Command trace runs a workload (or an assembly file) on the simulated core
// and prints the committed-instruction trace with cycle numbers and renaming
// decisions — the quickest way to watch the reuse scheme share physical
// registers.
//
//	trace -workload dgemm -n 40
//	trace -asm prog.s -scheme reuse -n 100 -skip 500
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "quickstart", "workload name, or use -asm")
		asmFile  = flag.String("asm", "", "assembly file to run instead of a workload")
		scheme   = flag.String("scheme", "reuse", "baseline | reuse")
		n        = flag.Uint64("n", 50, "number of committed instructions to print")
		skip     = flag.Uint64("skip", 0, "instructions to skip before printing")
	)
	flag.Parse()

	var p *prog.Program
	switch {
	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		p, err = asm.Assemble(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		w, ok := workloads.ByName(*workload, 1)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q; available: %v\n", *workload, workloads.Names())
			os.Exit(2)
		}
		p = w.Program()
	}

	sch := pipeline.Reuse
	if *scheme == "baseline" {
		sch = pipeline.Baseline
	}
	cfg := pipeline.DefaultConfig(sch)
	cfg.MaxInsts = *skip + *n
	var printed, seen uint64
	cfg.CommitHook = func(ev pipeline.CommitEvent) {
		seen++
		if seen <= *skip || printed >= *n {
			return
		}
		printed++
		mark := "      "
		switch {
		case ev.Micro:
			mark = "repair"
		case ev.Reused:
			mark = "reuse "
		case ev.DestTag != "":
			mark = "alloc "
		}
		line := fmt.Sprintf("cyc %-8d %s  %#06x  %-28s", ev.Cycle, mark, ev.PC, ev.Inst)
		if ev.DestTag != "" && !ev.Micro {
			line += " -> " + ev.DestTag
		}
		if ev.IsBranch {
			if ev.Taken {
				line += "  [taken]"
			} else {
				line += "  [not taken]"
			}
		}
		fmt.Println(line)
	}
	core := pipeline.New(cfg, p)
	if err := core.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := core.Stats()
	fmt.Printf("\n%d instructions, %d cycles, IPC %.3f (%s scheme)\n",
		st.Committed, st.Cycles, st.IPC(), sch)
}
