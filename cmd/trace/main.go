// Command trace runs a workload (or an assembly file) on the simulated core
// and prints a Kanata-style pipeline view: one line per committed
// instruction with its per-cycle stage timeline and renaming decision — the
// quickest way to watch the reuse scheme share physical registers.
//
//	trace -workload dgemm -n 40
//	trace -asm prog.s -scheme reuse -n 100 -skip 500
//	trace -workload poly_horner -n 30 -chrome out.json   # chrome://tracing
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "poly_horner", "workload name, or use -asm")
		asmFile  = flag.String("asm", "", "assembly file to run instead of a workload")
		scheme   = flag.String("scheme", "reuse", "baseline | reuse | early")
		scale    = flag.Int("scale", 1, "workload scale (1 = small, 4 = reference)")
		n        = flag.Uint64("n", 50, "number of committed instructions to print")
		skip     = flag.Uint64("skip", 0, "instructions to skip before printing")
		chrome   = flag.String("chrome", "", "write a Chrome trace_event JSON file (open in chrome://tracing or Perfetto)")
	)
	flag.Parse()

	var p *prog.Program
	switch {
	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		p, err = asm.Assemble(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		w, ok := workloads.ByName(*workload, *scale)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q; available: %v\n", *workload, workloads.Names())
			os.Exit(2)
		}
		p = w.Program()
	}

	sch, err := pipeline.ParseScheme(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := pipeline.DefaultConfig(sch)
	cfg.MaxInsts = *skip + *n

	view := obs.NewPipeView(os.Stdout, *skip, *n)
	cfg.Observer = view
	var tracer *obs.Tracer
	if *chrome != "" {
		// Size the ring to hold everything we intend to keep; squashed
		// wrong-path work inflates the in-flight count, so leave headroom.
		tracer = obs.NewTracer(int(*skip+*n)*2 + 1024)
		cfg.Observer = obs.Combine(view, tracer)
	}

	core := pipeline.New(cfg, p)
	if err := core.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := view.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := core.Stats()
	fmt.Printf("\n%d instructions, %d cycles, IPC %.3f (%s scheme)\n",
		st.Committed, st.Cycles, st.IPC(), sch)

	if tracer != nil {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tracer.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace: %s (%d records)\n", *chrome, len(tracer.Records()))
	}
}
