package regreuse

// One benchmark per table and figure of the paper's evaluation. Each runs a
// reduced (scale-1) version of the corresponding experiment so the full
// harness stays laptop-friendly; cmd/paper regenerates the reference-scale
// numbers recorded in EXPERIMENTS.md.

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/area"
	"repro/internal/ckpt"
	"repro/internal/emu"
	"repro/internal/pipeline"
	"repro/internal/regfile"
	"repro/internal/workloads"
)

// BenchmarkFig1SingleUse regenerates the Figure 1 analysis (single-use
// consumer fractions) across all workloads. Allocations are reported
// unconditionally: the streaming collector keeps the whole figure run at
// O(100) allocs (benchjson -allocs gates it in make benchsmoke).
func BenchmarkFig1SingleUse(b *testing.B) {
	warmMotivation(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := Motivation(1)
		if err != nil {
			b.Fatal(err)
		}
		suites := AggregateMotivation(rows)
		fp := suiteRow(suites, SPECfp)
		b.ReportMetric(fp.SingleUseRedef+fp.SingleUseOther, "specfp-singleuse-%")
		in := suiteRow(suites, SPECint)
		b.ReportMetric(in.SingleUseRedef+in.SingleUseOther, "specint-singleuse-%")
	}
}

// warmMotivation runs one untimed figure pass so the workload-source and
// assembled-program caches are populated before measurement: the benchmarks
// pin the steady-state analysis cost, not one-time program construction.
func warmMotivation(b *testing.B) {
	b.Helper()
	if _, err := Motivation(1); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig2Consumers regenerates Figure 2 (consumer-count distribution).
func BenchmarkFig2Consumers(b *testing.B) {
	warmMotivation(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := Motivation(1)
		if err != nil {
			b.Fatal(err)
		}
		suites := AggregateMotivation(rows)
		b.ReportMetric(suiteRow(suites, SPECfp).ConsumerPct[0], "specfp-one-use-%")
	}
}

// BenchmarkFig3ReuseDepth regenerates Figure 3 (reuse-chain depth buckets).
func BenchmarkFig3ReuseDepth(b *testing.B) {
	warmMotivation(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := Motivation(1)
		if err != nil {
			b.Fatal(err)
		}
		suites := AggregateMotivation(rows)
		fp := suiteRow(suites, SPECfp)
		b.ReportMetric(fp.ReusablePct[0], "specfp-one-reuse-%")
		b.ReportMetric(fp.ReusablePct[1], "specfp-two-reuses-%")
	}
}

// BenchmarkTable2Area regenerates Table II (area model).
func BenchmarkTable2Area(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		rows := AreaTable()
		total = rows[len(rows)-1].MM2
	}
	b.ReportMetric(total*1e3, "overhead-milli-mm2")
}

// BenchmarkTable3EqualArea regenerates Table III (equal-area configs).
func BenchmarkTable3EqualArea(b *testing.B) {
	var regs int
	for i := 0; i < b.N; i++ {
		for _, row := range EqualAreaTable() {
			regs = row.Hybrid.Total()
		}
	}
	b.ReportMetric(float64(regs), "hybrid-regs-at-112")
}

// BenchmarkFig9Coverage regenerates Figure 9 (shadow-bank occupancy
// percentiles over the SPECfp-like suite).
func BenchmarkFig9Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := OccupancyStudy(1, SPECfp, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(curves[0].Regs[4]), "regs-1shadow-p99")
	}
}

// BenchmarkFig10Speedup regenerates a reduced Figure 10 sweep (three sizes,
// the SPECfp-like suite) and reports the mid-size geomean speedup.
func BenchmarkFig10Speedup(b *testing.B) {
	names := []string{"dgemm", "poly_horner", "daxpy_chain", "nbody"}
	for i := 0; i < b.N; i++ {
		pts, err := SpeedupSweep(SweepOptions{Sizes: []int{56, 64, 96}, Scale: 1, Workloads: names})
		if err != nil {
			b.Fatal(err)
		}
		curves := AggregateSweep(pts)
		for _, c := range curves {
			if c.Suite == SPECfp {
				b.ReportMetric((c.Speedup[1]-1)*100, "specfp-speedup-%-at-64")
			}
		}
	}
}

// BenchmarkFig11IPC regenerates the Figure 11 IPC curves (reduced) and
// reports the equal-IPC register-file saving.
func BenchmarkFig11IPC(b *testing.B) {
	names := []string{"dgemm", "poly_horner", "daxpy_chain", "nbody"}
	for i := 0; i < b.N; i++ {
		pts, err := SpeedupSweep(SweepOptions{Sizes: []int{48, 56, 64, 80}, Scale: 1, Workloads: names})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range AggregateSweep(pts) {
			if c.Suite == SPECfp {
				if saving, ok := EqualIPCSaving(c, 64); ok {
					b.ReportMetric(saving, "equal-ipc-saving-%")
				}
			}
		}
	}
}

// BenchmarkFig12Predictor regenerates Figure 12 (type-predictor outcome
// classification).
func BenchmarkFig12Predictor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := PredictorBreakdown(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Suite == SPECfp {
				b.ReportMetric(r.ReuseRight+r.NormalRight, "specfp-pred-correct-%")
			}
		}
	}
}

// BenchmarkAblationReuseDepth compares reuse-chain caps 1/2/3 (the N-bit
// counter trade-off of §IV-A) on a chain-heavy workload.
func BenchmarkAblationReuseDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 3} {
		b.Run(benchName("depth", depth), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				res, err := RunWorkload("poly_horner", 1, Config{
					Scheme:     Reuse,
					ReuseDepth: depth,
					FPRegs:     area.EqualAreaConfig(56, 64),
				})
				if err != nil {
					b.Fatal(err)
				}
				ipc = res.IPC
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkCoreStep measures the steady-state cost of one simulated cycle
// per renaming scheme. Run with -benchmem: the allocs/op column must stay at
// zero (TestCoreStepZeroAllocs enforces it).
func BenchmarkCoreStep(b *testing.B) {
	w, ok := workloads.ByName("dgemm", 4)
	if !ok {
		b.Fatal("dgemm workload missing")
	}
	p := w.Program()
	for _, scheme := range []Scheme{Baseline, Reuse, EarlyRelease} {
		b.Run(scheme.String(), func(b *testing.B) {
			cfg := pipeline.DefaultConfig(pipeline.Scheme(scheme))
			core := pipeline.New(cfg, p)
			core.StepN(10000) // past cold-start warmup
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := b.N - done
				if n > 10000 {
					n = 10000
				}
				core.StepN(n)
				done += n
				if core.Halted() {
					b.StopTimer()
					core = pipeline.New(cfg, p)
					core.StepN(10000)
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkSweepScale1 runs the scale-1 register-file sweep over every
// workload at the paper's default 64-register point — the end-to-end shape
// the figure benchmarks stress, in benchstat-friendly form.
func BenchmarkSweepScale1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := SpeedupSweep(SweepOptions{Sizes: []int{64}, Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(pts)), "points")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed per scheme
// (simulated instructions per wall-clock second).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, scheme := range []Scheme{Baseline, Reuse} {
		b.Run(scheme.String(), func(b *testing.B) {
			w, _ := workloads.ByName("dgemm", 1)
			p := w.Program()
			var insts uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core := pipeline.New(pipeline.DefaultConfig(pipeline.Scheme(scheme)), p)
				if err := core.Run(); err != nil {
					b.Fatal(err)
				}
				insts += core.Stats().Committed
			}
			b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
		})
	}
}

// BenchmarkFastForward measures the functional fast-forward interpreter
// (emu.StepN's batched dispatch) end to end on the same workload as
// BenchmarkSimulatorThroughput; the ratio of the two Minst/s figures is the
// fast-forward speedup that cmd/benchjson records in BENCH_core.json.
func BenchmarkFastForward(b *testing.B) {
	w, _ := workloads.ByName("dgemm", 1)
	p := w.Program()
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn, err := ckpt.FastForward(p, 1<<62)
		if err != nil {
			b.Fatal(err)
		}
		insts += sn.InstCount
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkEmulatorThroughput measures the functional emulator's speed.
func BenchmarkEmulatorThroughput(b *testing.B) {
	w, _ := workloads.ByName("dgemm", 1)
	p := w.Program()
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := emu.New(p)
		n, err := s.RunToHalt(1<<32, nil)
		if err != nil {
			b.Fatal(err)
		}
		insts += n
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkAnalysisThroughput measures the streaming Figure 1-3 trace
// analysis rate: committed instructions per wall-clock second through
// analysis.AnalyzeProgram (emu.RunToHaltBatch feeding the bounded-memory
// collector). Compare with BenchmarkEmulatorThroughput (the bare Step
// loop) and BenchmarkFastForward (StepN with no analysis) to see what the
// collector costs on top of execution; benchjson records the rate as
// analysis_minst_per_s in BENCH_core.json and floors it in benchsmoke.
func BenchmarkAnalysisThroughput(b *testing.B) {
	w, _ := workloads.ByName("dgemm", 1)
	p := w.Program()
	var insts uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := analysis.AnalyzeProgram(p, 1<<32)
		if err != nil {
			b.Fatal(err)
		}
		insts += rep.TotalInsts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

func suiteRow(rows []SuiteMotivation, s Suite) SuiteMotivation {
	for _, r := range rows {
		if r.Suite == s {
			return r
		}
	}
	return SuiteMotivation{}
}

func benchName(prefix string, v int) string {
	return prefix + "-" + string(rune('0'+v))
}

// BenchmarkExtEnergy regenerates the energy-model extension comparison.
func BenchmarkExtEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := EnergyComparison("poly_horner", 1, 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.Relative, "relative-RF-energy")
	}
}

// BenchmarkExtEarlyRelease regenerates the related-work scheme comparison
// (§VII): baseline vs early release vs the paper's reuse.
func BenchmarkExtEarlyRelease(b *testing.B) {
	for _, scheme := range []Scheme{Baseline, EarlyRelease, Reuse} {
		b.Run(scheme.String(), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := Config{Scheme: scheme}
				if scheme == Baseline {
					cfg.FPRegs = regfile.Uniform(56, 0)
				} else {
					cfg.FPRegs = area.EqualAreaConfig(56, 64)
				}
				res, err := RunWorkload("poly_horner", 1, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkExtMemSpeculation compares conservative disambiguation against
// Alpha-style store-wait speculation on a store-heavy workload.
func BenchmarkExtMemSpeculation(b *testing.B) {
	for _, spec := range []bool{false, true} {
		name := "conservative"
		if spec {
			name = "speculative"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				w, _ := workloads.ByName("qsortint", 1)
				cfg := pipeline.DefaultConfig(pipeline.Baseline)
				cfg.MemSpeculation = spec
				core := pipeline.New(cfg, w.Program())
				if err := core.Run(); err != nil {
					b.Fatal(err)
				}
				cycles = core.Stats().Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkSampledThroughput measures the production detailed-core rate:
// interval sampling (ckpt.SampleN) over the reference-scale workload, with
// detail intervals fanned across GOMAXPROCS workers. The reported Minst/s is
// the effective rate — total program instructions over wall-clock time —
// which is how many instructions per second the detailed core characterizes
// when driven the way the sweeps drive it (statistics with stderr on ~5%
// detailed coverage, checksum still validated end to end). Compare with
// BenchmarkSimulatorThroughput for the raw full-fidelity rate; benchjson
// records the ratio as sampled_speedup in BENCH_core.json.
func BenchmarkSampledThroughput(b *testing.B) {
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunWorkload("dgemm", 4, Config{
			Scheme:        Reuse,
			Sample:        "2000:5000:100000",
			SampleWorkers: -1, // GOMAXPROCS
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Sampled == nil || !res.ChecksumOK {
			b.Fatal("sampled run did not produce a checked estimate")
		}
		insts += res.Sampled.TotalInsts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}
